#include "control/shell.hpp"

#include <charconv>
#include <cstdlib>
#include <sstream>

#include "telemetry/export.hpp"
#include "trace/chrome_export.hpp"
#include "trace/span.hpp"
#include "verify/mutations.hpp"
#include "verify/planner.hpp"
#include "verify/verifier.hpp"

namespace flymon::control {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

/// "key=value" -> value for `key`, or nullopt.
std::optional<std::string> arg_value(const std::vector<std::string>& args,
                                     const std::string& key) {
  const std::string prefix = key + "=";
  for (const std::string& a : args) {
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return std::nullopt;
}

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

std::optional<AttributeKind> parse_attr(const std::string& s) {
  if (s == "Frequency") return AttributeKind::kFrequency;
  if (s == "Distinct") return AttributeKind::kDistinct;
  if (s == "Existence") return AttributeKind::kExistence;
  if (s == "Max") return AttributeKind::kMax;
  if (s == "Similarity") return AttributeKind::kSimilarity;
  return std::nullopt;
}

std::optional<Algorithm> parse_algo(const std::string& s) {
  if (s == "Auto") return Algorithm::kAuto;
  if (s == "CMS") return Algorithm::kCms;
  if (s == "SuMaxSum") return Algorithm::kSuMaxSum;
  if (s == "MRAC") return Algorithm::kMrac;
  if (s == "Tower") return Algorithm::kTowerSketch;
  if (s == "CounterBraids") return Algorithm::kCounterBraids;
  if (s == "BeauCoup") return Algorithm::kBeauCoup;
  if (s == "HLL") return Algorithm::kHyperLogLog;
  if (s == "LinearCounting") return Algorithm::kLinearCounting;
  if (s == "BloomFilter") return Algorithm::kBloomFilter;
  if (s == "SuMaxMax") return Algorithm::kSuMaxMax;
  if (s == "MaxInterarrival") return Algorithm::kMaxInterarrival;
  if (s == "OddSketch") return Algorithm::kOddSketch;
  return std::nullopt;
}

std::optional<MetaField> parse_meta(const std::string& s) {
  if (s == "One") return MetaField::kOne;
  if (s == "Bytes") return MetaField::kWireBytes;
  if (s == "QueueLen") return MetaField::kQueueLen;
  if (s == "QueueDelay") return MetaField::kQueueDelay;
  if (s == "Timestamp") return MetaField::kTimestamp;
  return std::nullopt;
}

/// Shared by `add` and `plan add`; defined below cmd_add.
std::string parse_task_spec(const std::vector<std::string>& args,
                            TaskSpec& spec);

/// "10.0.0.0/8" -> (ip, len).
std::optional<std::pair<std::uint32_t, std::uint8_t>> parse_prefix(const std::string& s) {
  const auto slash = s.find('/');
  const std::string ip_part = slash == std::string::npos ? s : s.substr(0, slash);
  const auto ip = parse_ipv4(ip_part);
  if (!ip) return std::nullopt;
  std::uint8_t len = 32;
  if (slash != std::string::npos) {
    const auto l = parse_u64(s.substr(slash + 1));
    if (!l || *l > 32) return std::nullopt;
    len = static_cast<std::uint8_t>(*l);
  }
  return std::make_pair(*ip, len);
}

}  // namespace

std::optional<std::uint32_t> parse_ipv4(const std::string& text) {
  std::uint32_t ip = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
    std::uint32_t v = 0;
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{} || ptr == begin || v > 255) return std::nullopt;
    pos = static_cast<std::size_t>(ptr - text.data());
    ip = (ip << 8) | v;
  }
  return pos == text.size() ? std::optional<std::uint32_t>(ip) : std::nullopt;
}

std::optional<FlowKeySpec> parse_key_spec(const std::string& text) {
  if (text == "IPPair") return FlowKeySpec::ip_pair();
  if (text == "5Tuple") return FlowKeySpec::five_tuple();
  FlowKeySpec spec;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t plus = text.find('+', begin);
    const std::string field =
        text.substr(begin, plus == std::string::npos ? std::string::npos : plus - begin);
    std::string name = field;
    std::uint8_t len = 0;
    const auto slash = field.find('/');
    if (slash != std::string::npos) {
      name = field.substr(0, slash);
      const auto l = parse_u64(field.substr(slash + 1));
      if (!l || *l > 32) return std::nullopt;
      len = static_cast<std::uint8_t>(*l);
    }
    // Each field may appear at most once.
    if (name == "SrcIP" && spec.src_ip_bits == 0) {
      spec.src_ip_bits = len == 0 ? 32 : len;
    } else if (name == "DstIP" && spec.dst_ip_bits == 0) {
      spec.dst_ip_bits = len == 0 ? 32 : len;
    } else if (name == "SrcPort" && spec.src_port_bits == 0) {
      spec.src_port_bits = 16;
    } else if (name == "DstPort" && spec.dst_port_bits == 0) {
      spec.dst_port_bits = 16;
    } else if (name == "Proto" && spec.proto_bits == 0) {
      spec.proto_bits = 8;
    } else if (name == "Ts" && spec.ts_bits == 0) {
      spec.ts_bits = 32;
    } else {
      return std::nullopt;
    }
    if (plus == std::string::npos) break;
    begin = plus + 1;
  }
  if (spec.empty()) return std::nullopt;
  return spec;
}

std::string Shell::help() {
  return
      "commands:\n"
      "  add key=<spec> attr=<Frequency|Distinct|Existence|Max|Similarity>\n"
      "      [param=<One|Bytes|QueueLen|QueueDelay|Timestamp|key:<spec>>]\n"
      "      [algo=<CMS|SuMaxSum|MRAC|Tower|CounterBraids|BeauCoup|HLL|\n"
      "             LinearCounting|BloomFilter|SuMaxMax|MaxInterarrival|OddSketch>]\n"
      "      [mem=<buckets>] [rows=<d>] [filter=<ip/len>] [dstfilter=<ip/len>]\n"
      "      [threshold=<n>] [name=<text>]\n"
      "      [eps=<err>] [delta=<prob>] [flows=<n>]   accuracy targets\n"
      "  remove <id>            retire a task and reclaim its resources\n"
      "  resize <id> <buckets>  reallocate memory (id is stable)\n"
      "  split <id>             split into two filter-halved subtasks\n"
      "  query <id> src=<ip> [dst=<ip>] [sport=<n>] [dport=<n>] [proto=<n>]\n"
      "  cardinality <id>       distinct-count estimate (HLL/LinearCounting)\n"
      "  entropy <id>           flow entropy estimate (MRAC)\n"
      "  occupancy <id>         register load factor of a task\n"
      "  rebalance              adaptive grow/shrink of every task's memory\n"
      "  telemetry              live per-group/CMU counters + task health\n"
      "  telemetry on|off       enable/disable metric collection\n"
      "  telemetry json|prom [path]   export metrics (JSON / Prometheus text)\n"
      "  telemetry reset        zero every metric\n"
      "  trace on [1-in-N]      sample packet traces into a ring buffer\n"
      "  trace off | status     stop sampling / show tracer state\n"
      "  trace dump [path]      dump sampled PHV traces as JSON\n"
      "  trace spans on|off     record control-path spans (reconfig timeline)\n"
      "  trace spans dump [path] export spans as Chrome trace JSON (Perfetto)\n"
      "  trace spans status|clear  span collector stats / reset rings\n"
      "  verify                 run every static analyzer over the deployment\n"
      "  verify list            list the registered analyzers\n"
      "  verify <analyzer>      run one analyzer (resources|tcam|memory|tasks|\n"
      "                         dataflow-key|dataflow-range|dataflow-accuracy)\n"
      "  verify paranoid on|off re-verify after every deploy/resize/remove\n"
      "  verify selftest        seeded-corruption detection self-test\n"
      "  plan [show]            list the staged reconfiguration batch\n"
      "  plan add <add-args>    stage a deploy (same arguments as 'add')\n"
      "  plan remove <id> | resize <id> <buckets> | split <id>\n"
      "  plan run               dry-run the batch on a shadow world + verify\n"
      "  plan diff              compiled-entry diff the batch would cause\n"
      "  plan commit            apply the batch for real (only if clean)\n"
      "  plan clear             drop the staged batch\n"
      "  list | stats | help";
}

std::string Shell::execute(const std::string& line) {
  const std::vector<std::string> tokens = tokenize(line);
  if (tokens.empty()) return "";
  const std::string& cmd = tokens[0];
  const std::vector<std::string> args(tokens.begin() + 1, tokens.end());
  if (cmd == "help") return help();
  if (cmd == "add") return cmd_add(args);
  if (cmd == "remove") return cmd_remove(args);
  if (cmd == "resize") return cmd_resize(args);
  if (cmd == "split") return cmd_split(args);
  if (cmd == "list") return cmd_list();
  if (cmd == "stats") return cmd_stats();
  if (cmd == "query") return cmd_query(args);
  if (cmd == "cardinality") return cmd_cardinality(args);
  if (cmd == "entropy") return cmd_entropy(args);
  if (cmd == "occupancy") return cmd_occupancy(args);
  if (cmd == "rebalance") return cmd_rebalance();
  if (cmd == "telemetry") return cmd_telemetry(args);
  if (cmd == "trace") return cmd_trace(args);
  if (cmd == "verify") return cmd_verify(args);
  if (cmd == "plan") return cmd_plan(args);
  return "error: unknown command '" + cmd + "' (try 'help')";
}

std::string Shell::cmd_plan(const std::vector<std::string>& args) {
  if (args.empty() || args[0] == "show") {
    if (pending_.empty()) return "(no staged ops; 'plan add ...' to stage)";
    std::ostringstream out;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      const PlanOp& op = pending_[i];
      out << i + 1 << ". " << to_string(op.kind);
      switch (op.kind) {
        case PlanOp::Kind::kAdd:
          out << " \"" << op.spec.name << "\"";
          break;
        case PlanOp::Kind::kResize:
          out << " task " << op.task_id << " -> " << op.new_buckets
              << " buckets";
          break;
        default:
          out << " task " << op.task_id;
      }
      out << '\n';
    }
    out << pending_.size() << " op(s) staged ('plan run' to dry-run)";
    return out.str();
  }
  const std::string& sub = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (sub == "add") {
    TaskSpec spec;
    if (const std::string err = parse_task_spec(rest, spec); !err.empty()) {
      return err;
    }
    pending_.push_back(PlanOp::add(std::move(spec)));
    return "staged op " + std::to_string(pending_.size()) + ": add";
  }
  if (sub == "remove" || sub == "split") {
    if (rest.size() != 1) return "error: usage: plan " + sub + " <id>";
    const auto id = parse_u64(rest[0]);
    if (!id || ctl_->task(static_cast<std::uint32_t>(*id)) == nullptr) {
      return "error: unknown task";
    }
    pending_.push_back(sub == "remove"
                           ? PlanOp::remove(static_cast<std::uint32_t>(*id))
                           : PlanOp::split(static_cast<std::uint32_t>(*id)));
    return "staged op " + std::to_string(pending_.size()) + ": " + sub;
  }
  if (sub == "resize") {
    if (rest.size() != 2) return "error: usage: plan resize <id> <buckets>";
    const auto id = parse_u64(rest[0]);
    const auto buckets = parse_u64(rest[1]);
    if (!id || !buckets) return "error: bad arguments";
    if (ctl_->task(static_cast<std::uint32_t>(*id)) == nullptr) {
      return "error: unknown task";
    }
    pending_.push_back(PlanOp::resize(static_cast<std::uint32_t>(*id),
                                      static_cast<std::uint32_t>(*buckets)));
    return "staged op " + std::to_string(pending_.size()) + ": resize";
  }
  if (sub == "clear") {
    const std::size_t n = pending_.size();
    pending_.clear();
    return "cleared " + std::to_string(n) + " staged op(s)";
  }
  if (sub == "run") {
    const verify::PlanResult result = ctl_->plan(pending_);
    return result.format() + "(dry run; data plane untouched)";
  }
  if (sub == "diff") {
    const verify::PlanResult result = ctl_->plan(pending_);
    std::string out = verify::format_plan_diff(result.compiled_before,
                                               result.compiled_after);
    if (!result.ok) out += "note: plan FAILED: " + result.error + "\n";
    return out + "(dry run; data plane untouched)";
  }
  if (sub == "commit") {
    const verify::PlanResult result = ctl_->plan(pending_);
    if (!result.ok) {
      return result.format() +
             "commit aborted; staged ops kept ('plan clear' to drop)";
    }
    std::ostringstream out;
    for (const PlanOp& op : pending_) {
      switch (op.kind) {
        case PlanOp::Kind::kAdd: {
          const DeployResult r = ctl_->add_task(op.spec);
          if (!r.ok) return out.str() + "error applying add: " + r.error;
          out << "task " << r.task_id << " deployed\n";
          break;
        }
        case PlanOp::Kind::kRemove:
          if (!ctl_->remove_task(op.task_id)) {
            return out.str() + "error applying remove " +
                   std::to_string(op.task_id);
          }
          out << "task " << op.task_id << " removed\n";
          break;
        case PlanOp::Kind::kResize: {
          const DeployResult r = ctl_->resize_task(op.task_id, op.new_buckets);
          if (!r.ok) return out.str() + "error applying resize: " + r.error;
          out << "task " << op.task_id << " resized\n";
          break;
        }
        case PlanOp::Kind::kSplit: {
          const auto [lo, hi] = ctl_->split_task(op.task_id);
          if (!lo.ok) return out.str() + "error applying split: " + lo.error;
          out << "task " << op.task_id << " split into " << lo.task_id
              << " + " << hi.task_id << '\n';
          break;
        }
      }
    }
    out << pending_.size() << " op(s) committed";
    pending_.clear();
    return out.str();
  }
  return "error: usage: plan [show|add <args>|remove <id>|resize <id> "
         "<buckets>|split <id>|run|diff|commit|clear]";
}

namespace {

/// Parse the `add` argument family into a TaskSpec.  Returns an error
/// string ("" on success) so `add` and `plan add` share one parser.
std::string parse_task_spec(const std::vector<std::string>& args,
                            TaskSpec& spec) {
  if (const auto v = arg_value(args, "name")) spec.name = *v;

  if (const auto v = arg_value(args, "key")) {
    const auto key = parse_key_spec(*v);
    if (!key) return "error: bad key spec '" + *v + "'";
    spec.key = *key;
  }
  const auto attr_text = arg_value(args, "attr");
  if (!attr_text) return "error: attr= is required";
  const auto attr = parse_attr(*attr_text);
  if (!attr) return "error: bad attribute '" + *attr_text + "'";
  spec.attribute = *attr;

  if (const auto v = arg_value(args, "param")) {
    if (v->rfind("key:", 0) == 0) {
      const auto key = parse_key_spec(v->substr(4));
      if (!key) return "error: bad param key spec";
      spec.param = ParamSpec::compressed(*key);
    } else if (const auto meta = parse_meta(*v)) {
      spec.param = ParamSpec::metadata(*meta);
    } else if (const auto n = parse_u64(*v)) {
      spec.param = ParamSpec::constant(static_cast<std::uint32_t>(*n));
    } else {
      return "error: bad param '" + *v + "'";
    }
  } else if (spec.attribute == AttributeKind::kDistinct ||
             spec.attribute == AttributeKind::kExistence ||
             spec.attribute == AttributeKind::kSimilarity) {
    spec.param = ParamSpec::compressed(
        spec.key.empty() ? FlowKeySpec::five_tuple() : spec.key);
  }

  if (const auto v = arg_value(args, "algo")) {
    const auto algo = parse_algo(*v);
    if (!algo) return "error: bad algorithm '" + *v + "'";
    spec.algorithm = *algo;
  }
  if (const auto v = arg_value(args, "mem")) {
    const auto n = parse_u64(*v);
    if (!n || *n == 0) return "error: bad mem";
    spec.memory_buckets = static_cast<std::uint32_t>(*n);
  }
  if (const auto v = arg_value(args, "rows")) {
    const auto n = parse_u64(*v);
    if (!n || *n == 0 || *n > 3) return "error: rows must be 1..3";
    spec.rows = static_cast<unsigned>(*n);
  }
  if (const auto v = arg_value(args, "threshold")) {
    const auto n = parse_u64(*v);
    if (!n) return "error: bad threshold";
    spec.report_threshold = *n;
  }
  if (const auto v = arg_value(args, "filter")) {
    const auto p = parse_prefix(*v);
    if (!p) return "error: bad filter '" + *v + "'";
    spec.filter.src_ip = p->first;
    spec.filter.src_len = p->second;
  }
  if (const auto v = arg_value(args, "dstfilter")) {
    const auto p = parse_prefix(*v);
    if (!p) return "error: bad dstfilter '" + *v + "'";
    spec.filter.dst_ip = p->first;
    spec.filter.dst_len = p->second;
  }
  // Accuracy targets for the dataflow-accuracy analyzer.
  if (const auto v = arg_value(args, "eps")) {
    const auto d = parse_double(*v);
    if (!d || *d <= 0) return "error: bad eps";
    spec.target_epsilon = *d;
  }
  if (const auto v = arg_value(args, "delta")) {
    const auto d = parse_double(*v);
    if (!d || *d <= 0) return "error: bad delta";
    spec.target_delta = *d;
  }
  if (const auto v = arg_value(args, "flows")) {
    const auto n = parse_u64(*v);
    if (!n) return "error: bad flows";
    spec.expected_items = *n;
  }
  return {};
}

}  // namespace

std::string Shell::cmd_add(const std::vector<std::string>& args) {
  TaskSpec spec;
  if (const std::string err = parse_task_spec(args, spec); !err.empty()) {
    return err;
  }

  const DeployResult r = ctl_->add_task(spec);
  if (!r.ok) return "error: " + r.error;
  std::ostringstream out;
  out << "task " << r.task_id << " deployed: " << r.report.table_rules
      << " table rules, " << r.report.hash_mask_rules << " hash masks, "
      << r.report.cmus_used << " CMUs, " << r.report.delay_ms() << " ms";
  return out.str();
}

std::string Shell::cmd_remove(const std::vector<std::string>& args) {
  if (args.size() != 1) return "error: usage: remove <id>";
  const auto id = parse_u64(args[0]);
  if (!id) return "error: bad id";
  return ctl_->remove_task(static_cast<std::uint32_t>(*id)) ? "removed"
                                                            : "error: unknown task";
}

std::string Shell::cmd_resize(const std::vector<std::string>& args) {
  if (args.size() != 2) return "error: usage: resize <id> <buckets>";
  const auto id = parse_u64(args[0]);
  const auto buckets = parse_u64(args[1]);
  if (!id || !buckets) return "error: bad arguments";
  const DeployResult r =
      ctl_->resize_task(static_cast<std::uint32_t>(*id), static_cast<std::uint32_t>(*buckets));
  if (!r.ok) return "error: " + r.error;
  std::ostringstream out;
  out << "task " << r.task_id << " resized to "
      << ctl_->task(r.task_id)->buckets << " buckets in " << r.report.delay_ms()
      << " ms";
  return out.str();
}

std::string Shell::cmd_split(const std::vector<std::string>& args) {
  if (args.size() != 1) return "error: usage: split <id>";
  const auto id = parse_u64(args[0]);
  if (!id) return "error: bad id";
  const auto [lo, hi] = ctl_->split_task(static_cast<std::uint32_t>(*id));
  if (!lo.ok) return "error: " + lo.error;
  std::ostringstream out;
  out << "split into tasks " << lo.task_id << " and " << hi.task_id;
  return out.str();
}

std::string Shell::cmd_list() const {
  std::ostringstream out;
  out << "id   algorithm        attr        rows  buckets  name\n";
  for (std::uint32_t id : ctl_->task_ids()) {
    const DeployedTask* t = ctl_->task(id);
    char line[160];
    std::snprintf(line, sizeof line, "%-4u %-16s %-11s %-5zu %-8u %s\n", id,
                  to_string(t->algorithm), to_string(t->spec.attribute),
                  t->rows.size(), t->buckets, t->spec.name.c_str());
    out << line;
  }
  if (ctl_->task_ids().empty()) out << "(no tasks)\n";
  return out.str();
}

std::string Shell::cmd_stats() const {
  std::ostringstream out;
  auto& dp = ctl_->dataplane();
  out << "group cmu free-buckets\n";
  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    for (unsigned c = 0; c < dp.group(g).num_cmus(); ++c) {
      const std::uint32_t free = ctl_->free_buckets(g, c);
      if (free != dp.group(g).config().register_buckets) {
        char line[64];
        std::snprintf(line, sizeof line, "%-5u %-3u %u\n", g, c, free);
        out << line;
      }
    }
  }
  out << "tasks: " << ctl_->num_tasks();
  out << "\npackets processed: " << dp.packets_processed();
  out << "\ntelemetry: " << (telemetry::enabled() ? "on" : "off");
  out << ", tracing: ";
  if (dp.tracer() != nullptr) {
    out << "on (1-in-" << dp.tracer()->sample_every() << ", "
        << dp.tracer()->size() << "/" << dp.tracer()->capacity() << " records)";
  } else {
    out << "off";
  }
  return out.str();
}

std::string Shell::cmd_telemetry(const std::vector<std::string>& args) {
  telemetry::Registry& reg = ctl_->registry();
  if (!args.empty()) {
    const std::string& sub = args[0];
    if (sub == "on") {
      telemetry::set_enabled(true);
      return "telemetry enabled";
    }
    if (sub == "off") {
      telemetry::set_enabled(false);
      return "telemetry disabled";
    }
    if (sub == "reset") {
      reg.reset_values();
      return "telemetry metrics zeroed";
    }
    if (sub == "json" || sub == "prom") {
      ctl_->collect_telemetry();
      const std::string text = sub == "json" ? telemetry::to_json(reg)
                                             : telemetry::to_prometheus(reg);
      if (args.size() >= 2) {
        if (!telemetry::write_file(args[1], text)) {
          return "error: cannot write '" + args[1] + "'";
        }
        return "wrote " + std::to_string(text.size()) + " bytes to " + args[1];
      }
      return text;
    }
    return "error: usage: telemetry [on|off|reset|json|prom [path]]";
  }

  // Human-readable summary of the live counters and per-task health.
  ctl_->collect_telemetry();
  std::ostringstream out;
  auto& dp = ctl_->dataplane();
  out << "telemetry " << (telemetry::enabled() ? "on" : "off") << ", "
      << dp.packets_processed() << " packets processed\n";
  out << "group cmu updates      sampled-out  aborts       occupancy  tasks\n";
  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    for (unsigned c = 0; c < dp.group(g).num_cmus(); ++c) {
      const telemetry::Labels labels = {{"group", std::to_string(g)},
                                        {"cmu", std::to_string(c)}};
      const std::uint64_t updates =
          reg.counter("flymon_cmu_updates_total", labels).value();
      const std::uint64_t sampled =
          reg.counter("flymon_cmu_sampled_out_total", labels).value();
      const std::uint64_t aborts =
          reg.counter("flymon_cmu_prep_aborts_total", labels).value();
      const std::size_t installed = dp.group(g).cmu(c).entries().size();
      if (updates == 0 && sampled == 0 && aborts == 0 && installed == 0) continue;
      char line[160];
      std::snprintf(line, sizeof line, "%-5u %-3u %-12llu %-12llu %-12llu %-10.4f %zu\n",
                    g, c, static_cast<unsigned long long>(updates),
                    static_cast<unsigned long long>(sampled),
                    static_cast<unsigned long long>(aborts),
                    dp.group(g).cmu(c).register_occupancy(), installed);
      out << line;
    }
  }
  out << "task  algorithm        rows  buckets  rules  delay-ms  saturation\n";
  for (const TaskHealth& h : ctl_->health()) {
    char line[200];
    std::snprintf(line, sizeof line, "%-5u %-16s %-5u %-8u %-6u %-9.1f",
                  h.task_id, to_string(h.algorithm), h.rows, h.buckets,
                  h.table_rules + h.hash_mask_rules, h.cumulative_delay_ms);
    out << line;
    for (std::size_t r = 0; r < h.row_saturation.size(); ++r) {
      char sat[16];
      std::snprintf(sat, sizeof sat, "%s%.4f", r == 0 ? "" : "/",
                    h.row_saturation[r]);
      out << sat;
    }
    out << "\n";
  }
  if (ctl_->num_tasks() == 0) out << "(no tasks)\n";
  out << "(use 'telemetry json|prom [path]' to export)";
  return out.str();
}

std::string Shell::cmd_trace(const std::vector<std::string>& args) {
  auto& dp = ctl_->dataplane();
  if (!args.empty() && args[0] == "spans") {
    return cmd_trace_spans({args.begin() + 1, args.end()});
  }
  if (args.empty() || args[0] == "status") {
    std::ostringstream out;
    if (dp.tracer() != nullptr) {
      out << "tracing on: 1-in-" << tracer_->sample_every() << ", "
          << tracer_->size() << "/" << tracer_->capacity() << " records, "
          << tracer_->packets_seen() << " packets seen";
    } else if (tracer_ != nullptr) {
      out << "tracing off (" << tracer_->size() << " records buffered; 'trace dump')";
    } else {
      out << "tracing off";
    }
    return out.str();
  }
  const std::string& sub = args[0];
  if (sub == "on") {
    std::uint64_t every = 64;
    if (args.size() >= 2) {
      const auto n = parse_u64(args[1]);
      if (!n || *n == 0) return "error: bad sample rate";
      every = *n;
    }
    if (tracer_ == nullptr) tracer_ = std::make_unique<telemetry::PacketTracer>(256, every);
    tracer_->set_sample_every(every);
    dp.set_tracer(tracer_.get());
    return "tracing on: 1 in " + std::to_string(every) + " packets, ring of " +
           std::to_string(tracer_->capacity());
  }
  if (sub == "off") {
    dp.set_tracer(nullptr);
    return "tracing off";
  }
  if (sub == "dump") {
    if (tracer_ == nullptr) return "error: tracer never started";
    const std::string text = tracer_->to_json();
    if (args.size() >= 2) {
      if (!telemetry::write_file(args[1], text)) {
        return "error: cannot write '" + args[1] + "'";
      }
      return "wrote " + std::to_string(tracer_->size()) + " trace records to " + args[1];
    }
    return text;
  }
  return "error: usage: trace [on [1-in-N]|off|dump [path]|status|spans ...]";
}

std::string Shell::cmd_trace_spans(const std::vector<std::string>& args) {
  auto& collector = trace::SpanCollector::global();
  if (args.empty() || args[0] == "status") {
    const auto s = collector.stats();
    std::ostringstream out;
    out << "span tracing " << (trace::enabled() ? "on" : "off") << ": "
        << s.emitted << " events across " << s.threads << " threads ("
        << s.dropped << " dropped); " << trace::latest_reconfig()
        << " reconfigurations tagged";
    return out.str();
  }
  const std::string& sub = args[0];
  if (sub == "on") {
    trace::set_enabled(true);
    return "span tracing on (control-path spans record into per-thread rings)";
  }
  if (sub == "off") {
    trace::set_enabled(false);
    return "span tracing off";
  }
  if (sub == "clear") {
    collector.clear();
    return "span rings cleared";
  }
  if (sub == "dump") {
    const auto events = collector.collect();
    const std::string text = trace::to_chrome_trace_json(events);
    if (args.size() >= 2) {
      if (!telemetry::write_file(args[1], text)) {
        return "error: cannot write '" + args[1] + "'";
      }
      return "wrote " + std::to_string(events.size()) +
             " span events to " + args[1] +
             " (load in ui.perfetto.dev or chrome://tracing)";
    }
    return text;
  }
  return "error: usage: trace spans [on|off|dump [path]|clear|status]";
}

std::string Shell::cmd_verify(const std::vector<std::string>& args) {
  if (!args.empty() && args[0] == "paranoid") {
    if (args.size() != 2 || (args[1] != "on" && args[1] != "off")) {
      return "error: usage: verify paranoid on|off";
    }
    ctl_->set_paranoid(args[1] == "on");
    return std::string("paranoid mode ") + (ctl_->paranoid() ? "on" : "off");
  }
  if (!args.empty() && args[0] == "list") {
    std::ostringstream out;
    const verify::Verifier verifier;
    for (const auto& a : verifier.analyzers()) {
      char line[160];
      std::snprintf(line, sizeof line, "%-10s %s\n", std::string(a->name()).c_str(),
                    std::string(a->description()).c_str());
      out << line;
    }
    return out.str();
  }
  if (!args.empty() && args[0] == "selftest") {
    const auto result = verify::run_mutation_self_test();
    return verify::format(result) +
           (result.passed() ? "selftest passed" : "selftest FAILED");
  }

  verify::VerifyContext ctx;
  ctx.controller = ctl_;
  ctx.dataplane = &ctl_->dataplane();
  verify::VerifyReport report;
  try {
    report = args.empty() ? verify::Verifier{}.run(ctx)
                          : verify::Verifier{}.run_one(args[0], ctx);
  } catch (const std::invalid_argument& ex) {
    return std::string("error: ") + ex.what() + " (try 'verify list')";
  }
  std::ostringstream out;
  out << report.format();
  out << report.count(verify::Severity::kError) << " error(s), "
      << report.count(verify::Severity::kWarning) << " warning(s)";
  return out.str();
}

std::string Shell::cmd_query(const std::vector<std::string>& args) const {
  if (args.empty()) return "error: usage: query <id> src=<ip> ...";
  const auto id = parse_u64(args[0]);
  if (!id || ctl_->task(static_cast<std::uint32_t>(*id)) == nullptr) {
    return "error: unknown task";
  }
  Packet probe;
  if (const auto v = arg_value(args, "src")) {
    const auto ip = parse_ipv4(*v);
    if (!ip) return "error: bad src ip";
    probe.ft.src_ip = *ip;
  }
  if (const auto v = arg_value(args, "dst")) {
    const auto ip = parse_ipv4(*v);
    if (!ip) return "error: bad dst ip";
    probe.ft.dst_ip = *ip;
  }
  if (const auto v = arg_value(args, "sport")) {
    probe.ft.src_port = static_cast<std::uint16_t>(parse_u64(*v).value_or(0));
  }
  if (const auto v = arg_value(args, "dport")) {
    probe.ft.dst_port = static_cast<std::uint16_t>(parse_u64(*v).value_or(0));
  }
  if (const auto v = arg_value(args, "proto")) {
    probe.ft.protocol = static_cast<std::uint8_t>(parse_u64(*v).value_or(0));
  }

  const auto tid = static_cast<std::uint32_t>(*id);
  const DeployedTask* t = ctl_->task(tid);
  std::ostringstream out;
  switch (t->spec.attribute) {
    case AttributeKind::kExistence:
      out << (ctl_->query_existence(tid, probe) ? "present" : "absent");
      break;
    case AttributeKind::kDistinct:
      if (t->algorithm == Algorithm::kBeauCoup) {
        out << "distinct ~ " << ctl_->estimate_distinct(tid, probe)
            << (ctl_->distinct_over_threshold(tid, probe) ? " (over threshold)" : "");
      } else {
        out << "cardinality ~ " << ctl_->estimate_cardinality(tid);
      }
      break;
    case AttributeKind::kMax:
      if (t->algorithm == Algorithm::kMaxInterarrival) {
        out << "max inter-arrival " << ctl_->query_max_interarrival_ns(tid, probe)
            << " ns";
      } else {
        out << "max " << ctl_->query_value(tid, probe);
      }
      break;
    case AttributeKind::kSimilarity:
      out << "set size ~ " << ctl_->estimate_set_size(tid);
      break;
    default:
      out << "value " << ctl_->query_value(tid, probe);
  }
  return out.str();
}

std::string Shell::cmd_cardinality(const std::vector<std::string>& args) const {
  if (args.size() != 1) return "error: usage: cardinality <id>";
  const auto id = parse_u64(args[0]);
  if (!id || ctl_->task(static_cast<std::uint32_t>(*id)) == nullptr) {
    return "error: unknown task";
  }
  std::ostringstream out;
  out << ctl_->estimate_cardinality(static_cast<std::uint32_t>(*id));
  return out.str();
}

std::string Shell::cmd_entropy(const std::vector<std::string>& args) const {
  if (args.size() != 1) return "error: usage: entropy <id>";
  const auto id = parse_u64(args[0]);
  if (!id || ctl_->task(static_cast<std::uint32_t>(*id)) == nullptr) {
    return "error: unknown task";
  }
  std::ostringstream out;
  out << ctl_->estimate_entropy(static_cast<std::uint32_t>(*id)) << " nats";
  return out.str();
}

std::string Shell::cmd_occupancy(const std::vector<std::string>& args) {
  if (args.size() != 1) return "error: usage: occupancy <id>";
  const auto id = parse_u64(args[0]);
  if (!id || ctl_->task(static_cast<std::uint32_t>(*id)) == nullptr) {
    return "error: unknown task";
  }
  std::ostringstream out;
  out << adaptive_.occupancy(static_cast<std::uint32_t>(*id));
  return out.str();
}

std::string Shell::cmd_rebalance() {
  const auto decisions = adaptive_.rebalance();
  std::ostringstream out;
  unsigned resized = 0;
  for (const auto& d : decisions) {
    if (!d.attempted) continue;
    char line[128];
    std::snprintf(line, sizeof line, "task %u: occupancy %.2f, %u -> %u buckets%s\n",
                  d.task_id, d.occupancy, d.old_buckets, d.new_buckets,
                  d.resized ? "" : " (resize failed)");
    out << line;
    resized += d.resized;
  }
  out << resized << " task(s) resized";
  return out.str();
}

}  // namespace flymon::control
