// Translation validation for compiled ExecPlans (DESIGN.md §13).
//
// The PlanCompiler and the interpreted Cmu path are two implementations of
// the same per-packet semantics; every compiled publish is an opportunity
// for them to silently diverge.  This pass re-walks the deployment through
// ir::for_each_installed_entry — the shared single source of truth for the
// entry set and its evaluation order — and symbolically executes each
// compiled entry (filter predicate, hash-lane key slices, pre-shifted
// address translation, parameter lowering, SALU op-code, chain plumbing)
// against the interpreted semantics of the corresponding installed entry,
// reporting any divergence as a structured translate.* diagnostic.
//
// The companion merge-soundness prover (merge_prover.cpp) checks each
// MergeRegion fold is a commutative/associative monoid with identity 0 over
// the register's value domain, that every state-writing entry is covered by
// a matching region, and independently re-derives the merge blockers from
// the interpreted deployment (reusing the PR 3 interval machinery in
// src/ir/) — cross-checking the compiler's shard_mergeable verdict in both
// directions: a blocker the compiler missed is an error
// (translate.merge.unsound), a blocker it invented is a warning
// (translate.merge.spurious).
//
// Entry points: the "translate"/"merge" analyzers in the verify registry
// (gated on VerifyContext::exec_plan, so deploy-time gates that run before
// recompilation do not validate a stale plan), validate_plan() for direct
// plan-in-hand validation, the FlyMonDataPlane publish-time validator hook
// installed by Controller::set_paranoid, and `flymon_verify --translate`.
#pragma once

#include "verify/diagnostics.hpp"

namespace flymon {
class FlyMonDataPlane;
}  // namespace flymon

namespace flymon::exec {
class ExecPlan;
}  // namespace flymon::exec

namespace flymon::verify::translate {

/// Symbolically compare every compiled entry of `plan` against the
/// interpreted semantics of the deployment installed on `dp`.  Appends
/// translate.{entries,register,lane,filter,sample,key,address,param,prep,
/// op,chain} diagnostics on divergence.
void validate_translation(const FlyMonDataPlane& dp, const exec::ExecPlan& plan,
                          VerifyReport& report);

/// Prove each MergeRegion's fold is a monoid over the register domain,
/// check region coverage of every state-writing entry, and cross-check the
/// compiler's merge blockers against an independent derivation.  Appends
/// translate.merge.* diagnostics.
void prove_merge_soundness(const FlyMonDataPlane& dp, const exec::ExecPlan& plan,
                           VerifyReport& report);

}  // namespace flymon::verify::translate

namespace flymon::verify {

/// Run both translation-validation passes over (deployment, plan) and
/// return the combined report.  This is what the paranoid publish gate and
/// `flymon_verify --translate` consume.
VerifyReport validate_plan(const FlyMonDataPlane& dp,
                           const exec::ExecPlan& plan);

}  // namespace flymon::verify
