// Per-worker register shards for the multi-core execution engine.
//
// Every worker in the exec::WorkerPool owns a RegisterShard: a private,
// zero-initialised replica of every CMU register bank plus a flat block of
// telemetry counter deltas.  The hot path writes only its own shard —
// never a shared atomic — and shards fold back into the live registers at
// epoch/query boundaries via merge_into(), which applies the op-aware
// reduction the PlanCompiler proved exact (Cond-ADD→saturating sum,
// MAX→max, OR-mode AND-OR→or, XOR→xor; see DESIGN.md §11).
//
// Invariant maintained by the pool's fencing: a dirty shard only ever
// holds deltas produced under the currently published ExecPlan, so
// merge_into() is always called with the plan those deltas belong to.
#pragma once

#include <cstdint>
#include <vector>

#include "dataplane/salu.hpp"
#include "exec/exec_plan.hpp"

namespace flymon {
class FlyMonDataPlane;
}  // namespace flymon

namespace flymon::exec {

class RegisterShard {
 public:
  /// Build zeroed replicas of every CMU register bank in `dp`, in the same
  /// flat CMU order the PlanCompiler emits (group-major), plus a counter
  /// block sized for that geometry (2 slots per group, 8 per CMU).
  explicit RegisterShard(const FlyMonDataPlane& dp);

  RegisterShard(RegisterShard&&) noexcept = default;
  RegisterShard(const RegisterShard&) = delete;
  RegisterShard& operator=(const RegisterShard&) = delete;

  /// Binding handed to ExecPlan::run_batch_sharded.
  ShardBinding binding() noexcept {
    return ShardBinding{reg_ptrs_, counters_};
  }

  /// Whether any batch has written this shard since the last merge/discard.
  bool dirty() const noexcept { return dirty_; }
  void mark_dirty() noexcept { dirty_ = true; }

  /// Fold this shard into the live registers behind `plan` using the
  /// plan's merge regions, flush the counter deltas onto the plan's live
  /// telemetry counters, and zero the shard.  Caller must guarantee the
  /// shard's deltas were produced under `plan` (pool fencing does).
  void merge_into(const ExecPlan& plan);

  /// Drop all shard state without merging (epoch clear).
  void discard();

  std::size_t num_registers() const noexcept { return regs_.size(); }

 private:
  std::vector<dataplane::RegisterArray> regs_;   ///< flat CMU order
  std::vector<dataplane::RegisterArray*> reg_ptrs_;
  std::vector<std::uint64_t> counters_;
  bool dirty_ = false;
};

}  // namespace flymon::exec
