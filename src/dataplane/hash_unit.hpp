// Hash distribution unit with runtime-reconfigurable input masking
// ("dynamic hashing", Tofino SDE >= 9.7 tna_dyn_hashing).
#pragma once

#include <cstdint>

#include "packet/packet.hpp"

namespace flymon::dataplane {

/// One physical hash unit.  Its polynomial/init are fixed at compile time
/// (by physical identity); the input mask over the candidate key set is a
/// runtime rule installed from the control plane.
class HashUnit {
 public:
  /// `unit_index` selects the CRC polynomial; units with distinct indices
  /// produce (approximately) independent hashes of the same input.
  explicit HashUnit(unsigned unit_index = 0) noexcept;

  /// Install a dynamic-hashing mask: only bits set in `mask` participate.
  /// Counts as one hash-mask runtime rule for the deployment-delay model.
  void set_mask(const CandidateKey& mask) noexcept { mask_ = mask; configured_ = true; }

  /// Clear the mask (unit produces hash of nothing -> constant).
  void clear_mask() noexcept { mask_ = CandidateKey{}; configured_ = false; }

  bool configured() const noexcept { return configured_; }
  const CandidateKey& mask() const noexcept { return mask_; }
  unsigned unit_index() const noexcept { return unit_index_; }

  /// 32-bit hash of the masked candidate key.
  std::uint32_t compute(const CandidateKey& key) const noexcept;

 private:
  unsigned unit_index_ = 0;
  std::uint32_t poly_ = 0;
  std::uint32_t init_ = 0;
  CandidateKey mask_{};
  bool configured_ = false;
};

}  // namespace flymon::dataplane
