file(REMOVE_RECURSE
  "../bench/ablation_compressed_keys"
  "../bench/ablation_compressed_keys.pdb"
  "CMakeFiles/ablation_compressed_keys.dir/ablation_compressed_keys.cpp.o"
  "CMakeFiles/ablation_compressed_keys.dir/ablation_compressed_keys.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compressed_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
