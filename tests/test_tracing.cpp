// Tests for the span-tracing + stage-profiler subsystem:
//   - ring semantics: record/collect round trip under an injected clock,
//     drop accounting past the ring capacity, zero effect while disabled;
//   - reconfiguration tagging: nested scopes share one monotonic tag;
//   - Chrome trace export: byte-stable golden output (pid 1 thread tracks,
//     pid 2 per-generation tracks);
//   - end-to-end decomposition: a traced add+resize explains most of the
//     deploy delay through its child spans (the flymon_trace contract);
//   - worker-pool attribution: chunk spans land on multiple thread tracks
//     and the fence/merge spans nest correctly (churn variant runs the
//     same assertions under TSan with a concurrent collector);
//   - stage profiler: the profiled instantiation leaves registers
//     byte-identical to the unprofiled one while attributing every
//     compiled stage;
//   - telemetry wiring: per-reason fallback counters, merge-blocker kinds
//     and the fence-wait/merge histograms reach a bound registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "control/controller.hpp"
#include "exec/exec_plan.hpp"
#include "exec/worker_pool.hpp"
#include "packet/trace_gen.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/chrome_export.hpp"
#include "trace/span.hpp"
#include "trace/stage_profiler.hpp"

namespace flymon {
namespace {

/// Enables tracing against a clean collector; restores everything on exit
/// so test order never matters.
struct TraceGuard {
  explicit TraceGuard(bool on = true) {
    trace::SpanCollector::global().clear();
    trace::set_enabled(on);
  }
  ~TraceGuard() {
    trace::set_enabled(false);
    trace::set_clock(nullptr);
    trace::SpanCollector::global().clear();
  }
};

/// Deterministic clock: advances 1us per call.
std::atomic<std::uint64_t> g_fake_ns{0};
std::uint64_t fake_clock() {
  return g_fake_ns.fetch_add(1000, std::memory_order_relaxed);
}

std::vector<Packet> make_trace(std::size_t flows, std::size_t pkts,
                               std::uint64_t seed = 7) {
  TraceConfig cfg;
  cfg.num_flows = flows;
  cfg.num_packets = pkts;
  cfg.zipf_alpha = 1.05;
  cfg.seed = seed;
  return TraceGenerator::generate(cfg);
}

TaskSpec cms_spec(std::uint32_t buckets = 8192) {
  TaskSpec s;
  s.name = "cms";
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kFrequency;
  s.memory_buckets = buckets;
  s.rows = 3;
  return s;
}

/// Chained (register-derived output) algorithm: compile-time unmergeable,
/// so the pool must fall back sequentially and say why.
TaskSpec chained_spec() {
  TaskSpec s;
  s.name = "maxgap";
  s.key = FlowKeySpec::five_tuple();
  s.attribute = AttributeKind::kMax;
  s.algorithm = Algorithm::kMaxInterarrival;
  s.memory_buckets = 16384;
  s.rows = 1;
  return s;
}

void expect_identical_registers(const FlyMonDataPlane& a,
                                const FlyMonDataPlane& b, const char* what) {
  ASSERT_EQ(a.num_groups(), b.num_groups());
  for (unsigned g = 0; g < a.num_groups(); ++g) {
    ASSERT_EQ(a.group(g).num_cmus(), b.group(g).num_cmus());
    for (unsigned c = 0; c < a.group(g).num_cmus(); ++c) {
      const auto& ra = a.group(g).cmu(c).reg();
      const auto& rb = b.group(g).cmu(c).reg();
      ASSERT_EQ(ra.size(), rb.size());
      EXPECT_EQ(ra.read_range(0, ra.size()), rb.read_range(0, rb.size()))
          << what << ": registers differ at group " << g << " cmu " << c;
    }
  }
}

// ---------------------------------------------------------------------------
// Ring semantics.
// ---------------------------------------------------------------------------

TEST(SpanRing, RecordsNestedSpansWithInjectedClock) {
  TraceGuard on;
  g_fake_ns.store(10'000, std::memory_order_relaxed);
  trace::set_clock(&fake_clock);

  {
    trace::Span outer("test.outer", 42);   // open @10us
    {
      trace::Span inner("test.inner");     // open @11us
    }                                      // close @12us
    trace::instant("test.mark", 7);        // @13us
  }                                        // close @14us

  const auto events = trace::SpanCollector::global().collect();
  ASSERT_EQ(events.size(), 3u);
  // collect() sorts by start time: outer(10us), inner(11us), mark(13us).
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_EQ(events[0].start_ns, 10'000u);
  EXPECT_EQ(events[0].dur_ns, 4000u);
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[0].arg, 42u);
  EXPECT_EQ(events[0].gen, 0u);  // no ReconfigScope active
  EXPECT_STREQ(events[1].name, "test.inner");
  EXPECT_EQ(events[1].start_ns, 11'000u);
  EXPECT_EQ(events[1].dur_ns, 1000u);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_STREQ(events[2].name, "test.mark");
  EXPECT_EQ(events[2].kind, trace::EventKind::kInstant);
  EXPECT_EQ(events[2].dur_ns, 0u);
  EXPECT_EQ(events[2].arg, 7u);

  const auto stats = trace::SpanCollector::global().stats();
  EXPECT_EQ(stats.emitted, 3u);
  EXPECT_EQ(stats.dropped, 0u);
  // Rings stay registered across clear(), so earlier tests in the same
  // process may have registered more threads.
  EXPECT_GE(stats.threads, 1u);
}

TEST(SpanRing, OverflowIsDropAccounted) {
  TraceGuard on;
  const std::size_t total = trace::kRingCapacity + 900;
  for (std::size_t i = 0; i < total; ++i) trace::instant("test.flood", i);

  const auto stats = trace::SpanCollector::global().stats();
  EXPECT_EQ(stats.emitted, total);
  EXPECT_EQ(stats.dropped, total - trace::kRingCapacity);

  const auto events = trace::SpanCollector::global().collect();
  // The survivors are the newest kRingCapacity events; the reader's
  // conservative wrap check may additionally discard the oldest slot (it
  // is the next cell the writer would claim).
  ASSERT_GE(events.size(), trace::kRingCapacity - 1);
  ASSERT_LE(events.size(), trace::kRingCapacity);
  std::uint64_t min_arg = ~0ull;
  for (const auto& e : events) min_arg = std::min(min_arg, e.arg);
  EXPECT_GE(min_arg, total - trace::kRingCapacity);
  EXPECT_LE(min_arg, total - trace::kRingCapacity + 1);
}

TEST(SpanRing, DisabledTracingRecordsNothing) {
  TraceGuard off(false);
  {
    trace::Span span("test.should_not_appear", 1);
    trace::instant("test.nor_this");
  }
  const auto stats = trace::SpanCollector::global().stats();
  EXPECT_EQ(stats.emitted, 0u);
  EXPECT_EQ(trace::SpanCollector::global().collect().size(), 0u);
  // The stage profiler's sampling decision is also inert while disabled.
  auto& prof = trace::StageProfiler::global();
  prof.set_enabled(false);
  prof.reset();
  EXPECT_FALSE(prof.sample_batch());
  EXPECT_EQ(prof.batches_seen(), 0u);
}

TEST(ReconfigTags, NestedScopesShareOneMonotonicTag) {
  TraceGuard on;
  const std::uint64_t before = trace::latest_reconfig();
  EXPECT_EQ(trace::current_reconfig(), 0u);
  {
    trace::ReconfigScope outer;
    EXPECT_EQ(outer.tag(), before + 1);
    EXPECT_EQ(trace::current_reconfig(), before + 1);
    {
      trace::ReconfigScope inner;  // nested: reuses the outer tag
      EXPECT_EQ(inner.tag(), outer.tag());
    }
    trace::Span span("test.tagged");
  }
  EXPECT_EQ(trace::current_reconfig(), 0u);
  EXPECT_EQ(trace::latest_reconfig(), before + 1);

  const auto events = trace::SpanCollector::global().collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].gen, before + 1);
}

// ---------------------------------------------------------------------------
// Chrome trace export.
// ---------------------------------------------------------------------------

TEST(ChromeExport, GoldenBytes) {
  std::vector<trace::SpanEvent> ev;
  using trace::EventKind;
  ev.push_back({"ctl.add_task", 1000, 5000, 1, 7, 0, 0, EventKind::kSpan});
  ev.push_back({"exec.compile", 2000, 1500, 1, 3, 0, 1, EventKind::kSpan});
  ev.push_back(
      {"exec.plan_published", 3500, 0, 1, 3, 0, 1, EventKind::kInstant});
  ev.push_back({"exec.chunk", 4000, 800, 0, 3, 1, 0, EventKind::kSpan});

  const std::string expected = R"({
  "displayTimeUnit": "ns",
  "traceEvents": [
    {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"flymon threads"}},
    {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"thread 0"}},
    {"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"thread 1"}},
    {"name":"process_name","ph":"M","pid":2,"tid":0,"args":{"name":"flymon reconfigurations"}},
    {"name":"thread_name","ph":"M","pid":2,"tid":1,"args":{"name":"reconfig #1"}},
    {"name":"ctl.add_task","cat":"flymon","ph":"X","ts":1.000,"dur":5.000,"pid":1,"tid":0,"args":{"gen":1,"arg":7,"depth":0}},
    {"name":"ctl.add_task","cat":"flymon","ph":"X","ts":1.000,"dur":5.000,"pid":2,"tid":1,"args":{"gen":1,"arg":7,"depth":0}},
    {"name":"exec.compile","cat":"flymon","ph":"X","ts":2.000,"dur":1.500,"pid":1,"tid":0,"args":{"gen":1,"arg":3,"depth":1}},
    {"name":"exec.compile","cat":"flymon","ph":"X","ts":2.000,"dur":1.500,"pid":2,"tid":1,"args":{"gen":1,"arg":3,"depth":1}},
    {"name":"exec.plan_published","cat":"flymon","ph":"i","ts":3.500,"s":"t","pid":1,"tid":0,"args":{"gen":1,"arg":3,"depth":1}},
    {"name":"exec.plan_published","cat":"flymon","ph":"i","ts":3.500,"s":"t","pid":2,"tid":1,"args":{"gen":1,"arg":3,"depth":1}},
    {"name":"exec.chunk","cat":"flymon","ph":"X","ts":4.000,"dur":0.800,"pid":1,"tid":1,"args":{"gen":0,"arg":3,"depth":0}}
  ]
}
)";
  EXPECT_EQ(trace::to_chrome_trace_json(ev), expected);
}

TEST(ChromeExport, EmptyTimelineIsStillValidJson) {
  const std::string out = trace::to_chrome_trace_json({});
  EXPECT_NE(out.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_EQ(out.find(",\n  ]"), std::string::npos) << "trailing comma:\n"
                                                   << out;
}

// ---------------------------------------------------------------------------
// End-to-end: reconfiguration decomposition (the flymon_trace contract).
// ---------------------------------------------------------------------------

TEST(Decomposition, ChildSpansExplainTheDeployDelay) {
  TraceGuard on;
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ctl.set_paranoid(true);

  const auto r = ctl.add_task(cms_spec(16384));
  ASSERT_TRUE(r.ok) << r.error;
  const auto resized = ctl.resize_task(r.task_id, 32768);
  ASSERT_TRUE(resized.ok) << resized.error;

  const auto events = trace::SpanCollector::global().collect();
  std::size_t top_level = 0;
  for (const auto& e : events) {
    if (e.kind != trace::EventKind::kSpan || e.depth != 0 || e.gen == 0) {
      continue;
    }
    ++top_level;
    // Loose in-test bound; the flymon_trace CLI enforces the 95% contract
    // on the full traffic-under-load scenario.
    EXPECT_GE(trace::child_coverage(events, e), 0.5)
        << e.name << " gen " << e.gen << " is not decomposed by its children";
  }
  EXPECT_EQ(top_level, 2u);  // ctl.add_task + ctl.resize_task

  // Both reconfigurations produced a compile + publish under their tag;
  // the planner span fires at least for the add.
  const auto tagged_count = [&](const char* child) {
    std::size_t tagged = 0;
    for (const auto& e : events) {
      if (std::string(e.name) == child && e.gen != 0) ++tagged;
    }
    return tagged;
  };
  EXPECT_GE(tagged_count("exec.compile"), 2u);
  EXPECT_GE(tagged_count("exec.publish"), 2u);
  EXPECT_GE(tagged_count("ctl.plan"), 1u);
}

// ---------------------------------------------------------------------------
// Worker-pool attribution.
// ---------------------------------------------------------------------------

TEST(PoolTracing, ChunkSpansLandOnWorkerThreadTracks) {
  TraceGuard on;
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ASSERT_TRUE(ctl.add_task(cms_spec()).ok);
  dp.enable_parallel(4);

  const std::vector<Packet> trace = make_trace(512, 20'000, 11);
  const std::uint64_t gen = dp.plan_generation();
  for (int i = 0; i < 4; ++i) dp.process_batch_parallel(trace);
  // A reconfiguration with the pool live: republish fences the workers
  // (merging the dirty shards), so the fence + merge spans appear.
  ASSERT_TRUE(ctl.add_task(cms_spec(4096)).ok);
  dp.merge_shards();

  const auto events = trace::SpanCollector::global().collect();
  std::set<std::uint32_t> chunk_tids;
  std::size_t chunks = 0, fences = 0, merges = 0;
  for (const auto& e : events) {
    const std::string name = e.name;
    if (name == "exec.chunk") {
      ++chunks;
      chunk_tids.insert(e.tid);
      EXPECT_EQ(e.arg, gen);
    } else if (name == "exec.fence") {
      ++fences;
    } else if (name == "exec.merge_shards") {
      ++merges;
    }
  }
  EXPECT_GT(chunks, 4u);
  EXPECT_GE(chunk_tids.size(), 2u)
      << "all chunk spans on one thread: the pool did not fan out";
  EXPECT_GE(fences, 1u);
  EXPECT_GE(merges, 1u);

  // The merge nests inside the fence: same thread, within its interval,
  // one level deeper.
  for (const auto& f : events) {
    if (std::string(f.name) != "exec.fence") continue;
    bool nested = false;
    for (const auto& m : events) {
      if (std::string(m.name) != "exec.merge_shards" || m.tid != f.tid) {
        continue;
      }
      if (m.start_ns >= f.start_ns &&
          m.start_ns + m.dur_ns <= f.start_ns + f.dur_ns &&
          m.depth > f.depth) {
        nested = true;
      }
    }
    EXPECT_TRUE(nested) << "fence span without a nested merge";
  }
}

// The interesting assertions fire under TSan: reconfiguration churn with
// tracing enabled while a collector thread snapshots the rings and a
// processing thread pumps the pool.
TEST(TracingChurn, ReconfigureAndCollectWhileProcessingIsRaceFree) {
  TraceGuard on;
  const std::uint64_t tags_before = trace::latest_reconfig();
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ASSERT_TRUE(ctl.add_task(cms_spec()).ok);
  dp.enable_parallel(3);
  const std::vector<Packet> trace = make_trace(256, 2048, 9);

  std::atomic<bool> stop{false};
  std::uint64_t batches = 0;
  std::thread proc([&] {
    while (true) {
      dp.process_batch_parallel(trace);
      ++batches;
      if (stop.load(std::memory_order_acquire) && batches >= 8) break;
    }
  });
  std::atomic<std::uint64_t> collected{0};
  std::thread collector([&] {
    while (!stop.load(std::memory_order_acquire)) {
      collected += trace::SpanCollector::global().collect().size();
    }
    // Final drain after the churn finished: everything emitted before the
    // stop release-store is visible now.
    collected += trace::SpanCollector::global().collect().size();
  });

  for (int i = 0; i < 20; ++i) {
    TaskSpec s;
    s.name = "churn";
    s.key = FlowKeySpec::src_ip();
    s.attribute = AttributeKind::kFrequency;
    s.memory_buckets = 2048;
    s.rows = 1;
    const auto r = ctl.add_task(s);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_TRUE(ctl.remove_task(r.task_id));
  }
  stop.store(true, std::memory_order_release);
  proc.join();
  collector.join();
  dp.merge_shards();

  EXPECT_GE(batches, 8u);
  EXPECT_GT(collected.load(), 0u);
  // 1 cms + 20 * (add + remove) top-level reconfigurations.
  EXPECT_EQ(trace::latest_reconfig() - tags_before, 41u);
}

// ---------------------------------------------------------------------------
// Stage profiler.
// ---------------------------------------------------------------------------

TEST(StageProfiler, ProfiledPathMatchesUnprofiledRegisters) {
  auto& prof = trace::StageProfiler::global();
  FlyMonDataPlane plain_dp(9), prof_dp(9);
  control::Controller plain_ctl(plain_dp), prof_ctl(prof_dp);
  ASSERT_TRUE(plain_ctl.add_task(cms_spec()).ok);
  ASSERT_TRUE(prof_ctl.add_task(cms_spec()).ok);

  const std::vector<Packet> trace = make_trace(300, 6000, 5);
  prof.set_enabled(false);
  plain_dp.process_batch(trace);

  prof.set_enabled(true);
  prof.set_sample_every(1);
  prof.reset();
  prof_dp.process_batch(trace);
  prof.set_enabled(false);

  expect_identical_registers(plain_dp, prof_dp, "profiled vs unprofiled");

  const auto stats = prof.snapshot();
  using trace::Stage;
  for (const Stage s : {Stage::kCompression, Stage::kFilter, Stage::kAddress,
                        Stage::kSalu}) {
    const auto& st = stats[static_cast<std::size_t>(s)];
    EXPECT_GT(st.cycles, 0u) << trace::to_string(s);
    EXPECT_GT(st.items, 0u) << trace::to_string(s);
    EXPECT_GT(st.samples, 0u) << trace::to_string(s);
  }
  // One compression pass per packet; filter/address run once per CMU visit.
  EXPECT_EQ(stats[static_cast<std::size_t>(Stage::kCompression)].items,
            trace.size());
  EXPECT_GE(stats[static_cast<std::size_t>(Stage::kFilter)].items,
            trace.size());
}

TEST(StageProfiler, SamplingRateGatesAttribution) {
  auto& prof = trace::StageProfiler::global();
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ASSERT_TRUE(ctl.add_task(cms_spec()).ok);
  // Fits one batch chunk, so each process_batch is one sampling decision.
  const std::vector<Packet> trace = make_trace(100, 200, 3);
  ASSERT_LE(trace.size(), exec::kDefaultBatchChunk);

  prof.set_enabled(true);
  prof.set_sample_every(4);
  prof.reset();
  for (int i = 0; i < 8; ++i) dp.process_batch(trace);
  prof.set_enabled(false);

  EXPECT_EQ(prof.batches_seen(), 8u);
  const auto stats = prof.snapshot();
  // Batches 0 and 4 were sampled: 2 samples, 2 batches' worth of packets.
  const auto& comp =
      stats[static_cast<std::size_t>(trace::Stage::kCompression)];
  EXPECT_EQ(comp.samples, 2u);
  EXPECT_EQ(comp.items, 2 * trace.size());
}

TEST(StageProfiler, ShardedPhasesAreAttributed) {
  auto& prof = trace::StageProfiler::global();
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ASSERT_TRUE(ctl.add_task(cms_spec()).ok);
  dp.enable_parallel(2);

  prof.set_enabled(true);
  prof.set_sample_every(1);
  prof.reset();
  dp.process_batch_parallel(make_trace(256, 8000, 17));
  dp.merge_shards();
  prof.set_enabled(false);

  const auto stats = prof.snapshot();
  using trace::Stage;
  for (const Stage s : {Stage::kClaim, Stage::kExecute, Stage::kMerge}) {
    EXPECT_GT(stats[static_cast<std::size_t>(s)].samples, 0u)
        << trace::to_string(s);
  }
  EXPECT_GT(stats[static_cast<std::size_t>(Stage::kExecute)].items, 0u);
}

// ---------------------------------------------------------------------------
// Telemetry wiring: fallback reasons, merge blockers, fence/merge timing.
// ---------------------------------------------------------------------------

TEST(FallbackTelemetry, UnmergeablePlanCountsReasonAndBlockerKind) {
  telemetry::set_enabled(true);
  telemetry::Registry registry;
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  dp.bind_telemetry(registry);
  ctl.bind_telemetry(registry);
  ASSERT_TRUE(ctl.add_task(chained_spec()).ok);
  dp.enable_parallel(2);

  ASSERT_NE(dp.current_plan(), nullptr);
  ASSERT_FALSE(dp.current_plan()->shard_mergeable());
  ASSERT_FALSE(dp.current_plan()->merge_blocker_kinds().empty());
  EXPECT_EQ(dp.current_plan()->merge_blocker_kinds().front(),
            exec::MergeBlockerKind::kChainOutput);

  dp.process_batch_parallel(make_trace(100, 1000, 19));

  const auto stats = dp.parallel_stats();
  EXPECT_EQ(stats.fallback_batches, 1u);
  EXPECT_EQ(stats.fallback_unmergeable, 1u);
  EXPECT_EQ(stats.fallback_no_plan + stats.fallback_tracer, 0u);
  EXPECT_EQ(registry
                .counter("flymon_sharded_fallback_total",
                         {{"reason", "unmergeable"}})
                .value(),
            1u);
  EXPECT_GE(registry
                .counter("flymon_sharded_merge_blocker_total",
                         {{"kind", "chain_output"}})
                .value(),
            1u);
  telemetry::set_enabled(false);
}

TEST(FallbackTelemetry, FenceWaitAndMergeTimesReachHistograms) {
  telemetry::set_enabled(true);
  telemetry::Registry registry;
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  dp.bind_telemetry(registry);
  ctl.bind_telemetry(registry);
  ASSERT_TRUE(ctl.add_task(cms_spec()).ok);
  dp.enable_parallel(2);

  dp.process_batch_parallel(make_trace(200, 4000, 23));
  // Republish with dirty shards: the Fence times its submit-lock wait and
  // the merge observes the shard-fold duration.
  ASSERT_TRUE(ctl.add_task(cms_spec(4096)).ok);
  dp.merge_shards();

  EXPECT_EQ(dp.parallel_stats().fallback_batches, 0u);
  EXPECT_GE(registry.histogram("flymon_fence_wait_us").snapshot().count, 1u);
  EXPECT_GE(registry.histogram("flymon_shard_merge_us").snapshot().count, 1u);
  telemetry::set_enabled(false);
}

TEST(SpanTelemetry, FlushedDurationsReachHistograms) {
  TraceGuard on;
  g_fake_ns.store(0, std::memory_order_relaxed);
  trace::set_clock(&fake_clock);
  { trace::Span span("test.flushed"); }
  trace::instant("test.not_a_span");
  trace::set_clock(nullptr);

  telemetry::set_enabled(true);
  telemetry::Registry registry;
  trace::SpanCollector::global().flush_to_registry(registry);
  EXPECT_EQ(registry.counter("flymon_trace_spans_total").value(), 1u);
  const auto snap =
      registry.histogram("flymon_span_duration_us", {{"span", "test.flushed"}})
          .snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 1.0);  // fake clock: 1000ns span -> 1us

  // A second flush is incremental: nothing new to report.
  trace::SpanCollector::global().flush_to_registry(registry);
  EXPECT_EQ(registry.counter("flymon_trace_spans_total").value(), 1u);
  telemetry::set_enabled(false);
}

// ---------------------------------------------------------------------------
// Overhead guard: compiled-in-but-disabled tracing must be free enough that
// enabling the flag (with no control-path spans in the loop) is
// indistinguishable.  The <2% criterion proper is enforced on
// BM_FullPipelineBatched baselines; this is the in-tree smoke version with
// a deliberately slack bound so it never flakes.
// ---------------------------------------------------------------------------

TEST(Overhead, EnabledFlagAloneDoesNotSlowTheBatchedPath) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ASSERT_TRUE(ctl.add_task(cms_spec()).ok);
  const std::vector<Packet> trace = make_trace(500, 10'000, 29);

  const auto time_batches = [&](int reps) {
    std::uint64_t best = ~0ull;
    for (int r = 0; r < reps; ++r) {
      const std::uint64_t t0 = trace::monotonic_now_ns();
      dp.process_batch(trace);
      const std::uint64_t t1 = trace::monotonic_now_ns();
      best = std::min(best, t1 - t0);
    }
    return best;
  };

  time_batches(2);  // warm up
  trace::set_enabled(false);
  const std::uint64_t off_ns = time_batches(5);
  trace::set_enabled(true);
  const std::uint64_t on_ns = time_batches(5);
  trace::set_enabled(false);
  trace::SpanCollector::global().clear();

  EXPECT_LT(static_cast<double>(on_ns), 2.0 * static_cast<double>(off_ns))
      << "tracing flag alone doubled the batched path: off=" << off_ns
      << "ns on=" << on_ns << "ns";
}

}  // namespace
}  // namespace flymon
