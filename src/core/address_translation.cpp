#include "core/address_translation.hpp"

#include "common/bits.hpp"

namespace flymon {

std::uint32_t translate_address(std::uint32_t sliced_key, unsigned slice_width,
                                const MemoryPartition& part) noexcept {
  if (part.size == 0) return 0;
  const unsigned size_log = log2_floor(part.size);
  std::uint32_t offset;
  if (slice_width >= size_log) {
    // Right-shift so that the address falls into [0, size).
    offset = sliced_key >> (slice_width - size_log);
  } else {
    // Slice narrower than the partition: use it directly (upper addresses
    // of the partition simply stay cold).
    offset = sliced_key;
  }
  return part.base + (offset & (part.size - 1));
}

TranslationCost translation_cost(TranslationStrategy strategy,
                                 std::uint32_t total_buckets,
                                 const MemoryPartition& part) noexcept {
  TranslationCost c;
  if (part.size == 0 || total_buckets == 0) return c;
  const std::uint32_t ratio = total_buckets / part.size;
  if (strategy == TranslationStrategy::kTcam) {
    // One range entry per source block, except the block already in place;
    // plus the task's default entry (paper Fig 9: 3 entries + default for a
    // quarter-size partition).
    c.tcam_entries = (ratio > 0 ? ratio - 1 : 0) + 1;
  } else {
    // Shift-based: the shift plus base-add either takes a second stage or
    // pre-computes the per-sub-range offset in PHV during initialization.
    // Offsets are multiples of the partition size: log2(ratio) bits each,
    // one per possible sub-range position.
    c.phv_bits = ratio * (ratio > 1 ? log2_ceil(ratio) : 1);
    c.extra_stages = 0;  // PHV variant (the 1-extra-stage variant trades
                         // these bits for one MAU stage)
  }
  return c;
}

TranslationCost translation_cost_for_partitions(TranslationStrategy strategy,
                                                std::uint32_t total_buckets,
                                                unsigned partitions) noexcept {
  TranslationCost total;
  if (partitions == 0) return total;
  const std::uint32_t size = total_buckets / partitions;
  for (unsigned i = 0; i < partitions; ++i) {
    const MemoryPartition part{i * size, size};
    const TranslationCost c = translation_cost(strategy, total_buckets, part);
    total.tcam_entries += c.tcam_entries;
    total.extra_stages = std::max(total.extra_stages, c.extra_stages);
    if (strategy == TranslationStrategy::kShift) {
      // PHV offsets are per-task fields: they accumulate per concurrent task,
      // but each task only needs the offset of *its* sub-range: log2(ratio)
      // bits, plus a shared shift-amount encoding.
      total.phv_bits += partitions > 1 ? log2_ceil(partitions) : 1;
    }
  }
  return total;
}

}  // namespace flymon
