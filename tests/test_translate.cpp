// Translation validation for compiled ExecPlans (src/verify/translate):
// symbolic bit-vector domain, lockstep entry checks, merge-soundness
// prover, the seeded-miscompile self-test, and the paranoid publish gate.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "control/controller.hpp"
#include "core/flymon_dataplane.hpp"
#include "exec/exec_plan.hpp"
#include "verify/mutations.hpp"
#include "verify/translate/symbits.hpp"
#include "verify/translate/translate.hpp"
#include "verify/verifier.hpp"

namespace flymon {
namespace {

using verify::translate::SymWord;

// ---- symbolic GF(2) words ----

TEST(SymBits, XorOfALaneWithItselfCancelsToZero) {
  const SymWord a = SymWord::lane(1);
  EXPECT_EQ(a ^ a, SymWord::constant(0));
  EXPECT_EQ(SymWord::first_divergent_bit(a ^ a, SymWord::constant(0)), -1);
}

TEST(SymBits, ConstantsFollowConcreteArithmetic) {
  EXPECT_EQ(SymWord::constant(0xF0u) ^ SymWord::constant(0x0Fu),
            SymWord::constant(0xFFu));
  EXPECT_EQ(SymWord::constant(0xFF00u) >> 8, SymWord::constant(0xFFu));
  EXPECT_EQ(SymWord::constant(0xABCDu) & 0xFF00u, SymWord::constant(0xAB00u));
  EXPECT_EQ(SymWord::first_divergent_bit(SymWord::constant(0),
                                         SymWord::constant(8)),
            3);
}

TEST(SymBits, ShiftAndMaskMoveSymbolicBits) {
  const SymWord w = SymWord::lane(2);
  const SymWord s = (w >> 4) & 0xFFu;
  // Bit 0 of the slice is lane bit 4; bits >= 8 are masked to constant 0.
  EXPECT_EQ(s.bit(0).vars, std::vector<std::uint32_t>{2u * 32u + 4u});
  EXPECT_TRUE(s.bit(8).is_constant());
  // Shifting by the full word width yields constant zero.
  EXPECT_EQ(w >> 32, SymWord::constant(0));
}

// ---- world helpers ----

control::DeployResult add_cms(control::Controller& ctl, const std::string& name,
                              TaskFilter filter = TaskFilter::any()) {
  TaskSpec s;
  s.name = name;
  s.filter = filter;
  s.key = FlowKeySpec::src_ip();
  s.attribute = AttributeKind::kFrequency;
  s.algorithm = Algorithm::kCms;
  s.memory_buckets = 4096;
  return ctl.add_task(s);
}

std::shared_ptr<exec::ExecPlan> mutable_plan(FlyMonDataPlane& dp) {
  // Test-only: nothing processes packets while the plan mutates.
  auto plan = std::const_pointer_cast<exec::ExecPlan>(dp.current_plan());
  EXPECT_NE(plan, nullptr);
  return plan;
}

// ---- clean plans translate clean ----

TEST(Translate, DeployedPlanValidatesClean) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ASSERT_TRUE(add_cms(ctl, "hh").ok);
  const auto plan = dp.current_plan();
  ASSERT_NE(plan, nullptr);
  const auto report = verify::validate_plan(dp, *plan);
  EXPECT_TRUE(report.empty()) << report.format();
  EXPECT_EQ(report.analyzers_run,
            (std::vector<std::string>{"translate", "merge"}));
}

// ---- seeded miscompiles must all be caught ----

TEST(Translate, SelfTestCatchesEverySeededMiscompile) {
  const auto result = verify::run_mutation_self_test("miscompile-");
  EXPECT_TRUE(result.baseline_clean) << result.baseline_diagnostics;
  EXPECT_EQ(result.cases.size(), 7u);
  for (const auto& c : result.cases) {
    EXPECT_TRUE(c.detected) << c.mutation << " expected " << c.expected_check
                            << "\n" << c.diagnostics;
  }
  EXPECT_TRUE(result.passed());
}

TEST(Translate, WrongPreShiftDivergesSymbolically) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ASSERT_TRUE(add_cms(ctl, "hh").ok);
  const auto plan = mutable_plan(dp);
  bool mutated = false;
  for (exec::CompiledEntry& e : exec::PlanMutator::entries(*plan)) {
    if ((e.key_slot_a != 0 || e.key_slot_b != 0) && e.addr_mask != 0) {
      e.addr_shift += 1;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  const auto report = verify::validate_plan(dp, *plan);
  EXPECT_TRUE(report.has_check("translate.address")) << report.format();
  EXPECT_TRUE(report.has_errors());
}

TEST(Translate, StaleLaneSnapshotFlaggedAfterLiveReconfiguration) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ASSERT_TRUE(add_cms(ctl, "hh").ok);
  const auto plan = dp.current_plan();
  ASSERT_NE(plan, nullptr);
  ASSERT_GE(plan->num_hash_slots(), 2u);
  // Reconfigure the live unit the plan snapshotted WITHOUT republishing:
  // the plan is now stale and must say so.
  const auto slot = plan->hash_slots()[1];
  auto& comp = dp.group(slot.group).compression();
  comp.clear_unit(slot.unit_index);
  comp.configure(slot.unit_index, FlowKeySpec::dst_ip());
  const auto report = verify::validate_plan(dp, *plan);
  EXPECT_TRUE(report.has_check("translate.lane")) << report.format();
}

// ---- merge prover ----

TEST(MergeProver, NarrowedRegionMaskViolatesIdentityLaw) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ASSERT_TRUE(add_cms(ctl, "hh").ok);
  const auto plan = mutable_plan(dp);
  bool mutated = false;
  for (exec::MergeRegion& r : exec::PlanMutator::merge_regions(*plan)) {
    if (r.kind == exec::MergeKind::kSum || r.kind == exec::MergeKind::kXor) {
      r.value_mask >>= 16;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  const auto report = verify::validate_plan(dp, *plan);
  EXPECT_TRUE(report.has_check("translate.merge.law")) << report.format();
  EXPECT_TRUE(report.has_check("translate.merge.mask")) << report.format();
}

TEST(MergeProver, ClearedBlockersAreUnsoundInOneDirectionOnly) {
  // The full base scenario (chained Odd Sketch) is exercised by the
  // self-test; here prove the asymmetry on a small world: a chain-writing
  // entry whose blocker the "compiler" forgot.
  const auto report = verify::run_single_mutation("miscompile-cleared-blockers");
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->has_check("translate.merge.unsound")) << report->format();
  EXPECT_FALSE(report->has_check("translate.merge.spurious"));
}

TEST(MergeProver, IntervalDerivationProvesCompilerConservatism) {
  // AND-OR whose p2 is MetaField::kOne: the compiler's const-only rule
  // records an AND-mode blocker, but the interval analysis proves p2 == 1
  // always — OR-pinned.  The cross-check must warn (spurious), not error.
  FlyMonDataPlane dp(2);
  auto& comp = dp.group(0).compression();
  const auto u = comp.free_unit();
  ASSERT_TRUE(u.has_value());
  comp.configure(*u, FlowKeySpec::src_ip());
  CmuTaskEntry e;
  e.task_id = 77;
  e.key_sel = {static_cast<std::int8_t>(*u), -1};
  e.partition = {0, 256};
  e.p1 = ParamSelect::constant(0xFFu);
  e.p2 = ParamSelect::metadata(MetaField::kOne);
  e.op = dataplane::StatefulOp::kAndOr;
  dp.group(0).cmu(0).install(e);
  ASSERT_GT(dp.republish_plan(), 0u);
  const auto plan = dp.current_plan();
  ASSERT_NE(plan, nullptr);
  ASSERT_FALSE(plan->shard_mergeable());  // compiler is conservative
  const auto report = verify::validate_plan(dp, *plan);
  EXPECT_FALSE(report.has_errors()) << report.format();
  EXPECT_TRUE(report.has_check("translate.merge.spurious")) << report.format();
}

// ---- analyzer registry gating ----

TEST(TranslateAnalyzer, SilentWithoutExplicitPlanLoudWithIt) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ASSERT_TRUE(add_cms(ctl, "hh").ok);
  const auto plan = mutable_plan(dp);
  // Corrupt the plan so the analyzer WOULD diagnose if it looked.
  auto& entries = exec::PlanMutator::entries(*plan);
  ASSERT_FALSE(entries.empty());
  entries[0].op = dataplane::StatefulOp::kNop;

  const verify::Verifier v;
  verify::VerifyContext ctx;
  ctx.controller = &ctl;
  ctx.dataplane = &dp;
  // Without exec_plan the analyzers must not compare against the (possibly
  // stale) published plan — deploy-time gates run before recompilation.
  EXPECT_TRUE(v.run_one("translate", ctx).empty());
  EXPECT_TRUE(v.run_one("merge", ctx).empty());
  ctx.exec_plan = plan.get();
  EXPECT_TRUE(v.run_one("translate", ctx).has_errors());
}

// ---- publish-time gate ----

TEST(PublishGate, VetoDropsPlanAndSurfacesDiagnostics) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  dp.set_plan_validator([](const FlyMonDataPlane&, const exec::ExecPlan&) {
    return std::string("synthetic veto");
  });
  const auto r = add_cms(ctl, "hh");
  EXPECT_TRUE(r.ok);  // the deployment stands — a miscompile is not its fault
  // ...but nothing was published: interpreted execution serves traffic.
  EXPECT_EQ(dp.plan_generation(), 0u);
  EXPECT_EQ(dp.current_plan(), nullptr);
  EXPECT_EQ(dp.last_publish_veto(), "synthetic veto");
  EXPECT_EQ(ctl.last_verify_errors(), "synthetic veto");
  // Clearing the validator lets the next publish through.
  dp.set_plan_validator({});
  EXPECT_GT(dp.republish_plan(), 0u);
  EXPECT_NE(dp.current_plan(), nullptr);
  EXPECT_TRUE(dp.last_publish_veto().empty());
}

TEST(PublishGate, ParanoidModeInstallsTranslationValidator) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  ctl.set_paranoid(true);
  // A correct compile passes the real translation validator and publishes.
  ASSERT_TRUE(add_cms(ctl, "hh").ok);
  EXPECT_GT(dp.plan_generation(), 0u);
  EXPECT_TRUE(dp.last_publish_veto().empty());
  EXPECT_TRUE(ctl.last_verify_errors().empty());
  // Toggling paranoid off clears the gate; publishes still succeed.
  ctl.set_paranoid(false);
  ASSERT_TRUE(add_cms(ctl, "hh2", TaskFilter::src(0x0A00'0000u, 8)).ok);
  EXPECT_GT(dp.plan_generation(), 1u);
}

}  // namespace
}  // namespace flymon
