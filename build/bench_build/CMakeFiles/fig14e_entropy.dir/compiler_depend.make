# Empty compiler generated dependencies file for fig14e_entropy.
# This may be replaced when dependencies are built.
