file(REMOVE_RECURSE
  "libflymon_common.a"
)
