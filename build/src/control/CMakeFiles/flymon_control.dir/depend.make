# Empty dependencies file for flymon_control.
# This may be replaced when dependencies are built.
