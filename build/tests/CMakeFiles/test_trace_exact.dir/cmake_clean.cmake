file(REMOVE_RECURSE
  "CMakeFiles/test_trace_exact.dir/test_trace_exact.cpp.o"
  "CMakeFiles/test_trace_exact.dir/test_trace_exact.cpp.o.d"
  "test_trace_exact"
  "test_trace_exact.pdb"
  "test_trace_exact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
