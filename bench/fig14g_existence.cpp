// Paper Figure 14g: existence check (Bloom filter) false-positive rate vs
// memory, before and after the bit-packing optimisation that uses every
// bit of the uniform 32-bit CMU buckets (§4).
#include "bench/bench_util.hpp"

using namespace flymon;

namespace {

double existence_fp(bool bit_packed, std::size_t mem_bytes,
                    const std::vector<Packet>& members,
                    const std::vector<Packet>& non_members) {
  TaskSpec spec;
  spec.key = FlowKeySpec::five_tuple();
  spec.attribute = AttributeKind::kExistence;
  spec.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
  spec.rows = 3;
  spec.bloom_bit_packed = bit_packed;
  spec.memory_buckets =
      static_cast<std::uint32_t>(std::max<std::size_t>(32, mem_bytes / (4 * spec.rows)));
  auto inst = bench::deploy_flymon(spec);
  if (!inst.ok) return -1;
  inst.dp->process_all(members);

  // No false negatives allowed.
  for (std::size_t i = 0; i < members.size(); i += 37) {
    if (!inst.ctl->query_existence(inst.task_id, members[i])) return -2;
  }
  std::size_t fp = 0;
  for (const Packet& p : non_members) fp += inst.ctl->query_existence(inst.task_id, p);
  return analysis::false_positive_rate(fp, non_members.size());
}

}  // namespace

int main() {
  bench::header("Figure 14g", "Existence check: false positives vs memory");

  // 20K inserted keys; ~95K probes of which 75K are not in the set.
  TraceConfig in_cfg;
  in_cfg.num_flows = 20'000;
  in_cfg.num_packets = 20'000;
  in_cfg.zipf_alpha = 0.0;
  const auto members = TraceGenerator::generate(in_cfg);

  TraceConfig out_cfg = in_cfg;
  out_cfg.num_flows = 75'000;
  out_cfg.num_packets = 75'000;
  out_cfg.seed = 77;
  out_cfg.src_ip_base = 0x2F00'0000;  // disjoint pool: guaranteed non-members
  const auto non_members = TraceGenerator::generate(out_cfg);

  std::printf("%10s %14s %14s\n", "memory", "w/o Opt", "w/ Opt");
  for (std::size_t kb : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const std::size_t bytes = kb * 1024;
    std::printf("%10s %14.4f %14.4f\n", bench::fmt_mem(bytes).c_str(),
                existence_fp(false, bytes, members, non_members),
                existence_fp(true, bytes, members, non_members));
  }
  std::printf("\n(paper: the optimised filter reaches FP < 0.1%% while the "
              "1-bit-per-bucket variant wastes 31/32 of the memory)\n");
  return 0;
}
