// The FlyMon data plane: a set of cross-stacked CMU Groups processed in
// pipeline order, sharing one PHV context per packet so CMUs in later
// groups can consume results of earlier ones (SuMax chaining, max
// inter-arrival, Counter Braids carries).
//
// Two execution paths share the same registers and counters:
//   - the interpreted path walks the mutable Cmu/CompressionStage objects
//     per packet (control-plane probes, traced packets, no plan published);
//   - the compiled path executes an immutable exec::ExecPlan snapshot held
//     behind an RCU-style atomic shared_ptr.  The controller republishes a
//     freshly compiled plan after every reconfiguration; in-flight batches
//     keep running against the plan they acquire-loaded, so reconfiguration
//     never stalls or tears the packet path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/cmu_group.hpp"
#include "exec/plan_cell.hpp"
#include "telemetry/trace_ring.hpp"

namespace flymon::exec {
class ExecPlan;
struct BatchScratch;
struct EntryOwnership;
}  // namespace flymon::exec

namespace flymon {

class FlyMonDataPlane {
 public:
  explicit FlyMonDataPlane(unsigned num_groups = 9, const CmuGroupConfig& cfg = {});
  ~FlyMonDataPlane();

  FlyMonDataPlane(const FlyMonDataPlane&) = delete;
  FlyMonDataPlane& operator=(const FlyMonDataPlane&) = delete;

  unsigned num_groups() const noexcept { return static_cast<unsigned>(groups_.size()); }
  CmuGroup& group(unsigned i) { return groups_.at(i); }
  const CmuGroup& group(unsigned i) const { return groups_.at(i); }

  /// Process one packet (single-packet batch).
  void process(const Packet& pkt);

  /// Process a batch: compression (hashing) runs for the whole batch before
  /// the attribute stages when a compiled plan is published; falls back to
  /// the per-packet interpreted path otherwise (and for traced packets).
  /// Returns the plan generation the batch executed under (0 = interpreted).
  std::uint64_t process_batch(std::span<const Packet> pkts);

  /// Process a whole trace through the batched path.
  void process_all(std::span<const Packet> trace) { process_batch(trace); }

  std::uint64_t packets_processed() const noexcept {
    return packets_.load(std::memory_order_relaxed);
  }

  /// Clear all registers (start of a measurement epoch).
  void clear_registers();

  // ---- compiled-plan publication (RCU-style snapshot swap) ----

  /// Compile the current deployment into a fresh ExecPlan (tagging entries
  /// with `owners`) and publish it with a release store.  Returns the new
  /// plan generation.  Call from the control thread after reconfiguring.
  std::uint64_t republish_plan(std::span<const exec::EntryOwnership> owners);

  /// Recompile with the ownership labels of the currently published plan
  /// (used after telemetry rebinding; publishes an empty-ownership plan if
  /// none was published before).
  std::uint64_t republish_plan();

  /// Drop the published plan: processing reverts to the interpreted path.
  void unpublish_plan() noexcept;

  /// The currently published plan (nullptr = interpreted execution).
  std::shared_ptr<const exec::ExecPlan> current_plan() const noexcept;

  /// Generation of the published plan, 0 when none.
  std::uint64_t plan_generation() const noexcept;

  /// Rebind all instrumentation counters (groups, CMUs, pipeline totals)
  /// into `registry` and recompile the published plan against the new
  /// counter handles.  Construction binds to telemetry::Registry::global().
  void bind_telemetry(telemetry::Registry& registry);
  telemetry::Registry& registry() const noexcept { return *registry_; }

  /// Attach / detach a sampled-packet tracer (not owned).  While attached,
  /// 1-in-N packets record their PHV transformations into the ring; traced
  /// packets always run the interpreted path (the compiled path does not
  /// trace), batches split around them.
  void set_tracer(telemetry::PacketTracer* tracer) noexcept { tracer_ = tracer; }
  telemetry::PacketTracer* tracer() const noexcept { return tracer_; }

 private:
  /// Legacy per-packet path against the mutable objects.
  void interpret(const Packet& pkt, bool traced);
  /// Run `pkts` through `plan` in bounded chunks (reusing scratch_).
  void run_plan(const exec::ExecPlan& plan, std::span<const Packet> pkts);

  std::vector<CmuGroup> groups_;
  std::atomic<std::uint64_t> packets_{0};
  // The RCU cell: packet path acquire-loads, control plane release-stores.
  exec::PlanCell plan_;
  std::uint64_t next_generation_ = 0;  ///< control-thread only
  std::unique_ptr<exec::BatchScratch> scratch_;  ///< processing-thread only
  telemetry::Registry* registry_ = nullptr;
  telemetry::Counter* packets_counter_ = nullptr;
  telemetry::PacketTracer* tracer_ = nullptr;
};

/// Set point-in-time dataplane gauges (per-CMU register occupancy, installed
/// rules, configured hash units) in `registry`.  Cheap enough to call from a
/// shell command; not meant for the packet path.
void collect_dataplane_telemetry(const FlyMonDataPlane& dp,
                                 telemetry::Registry& registry);

}  // namespace flymon
