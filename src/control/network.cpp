#include "control/network.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace flymon::control {

NetworkFlyMon::NetworkFlyMon(unsigned num_switches, unsigned groups_per_switch,
                             const CmuGroupConfig& cfg) {
  if (num_switches == 0) throw std::invalid_argument("NetworkFlyMon: zero switches");
  nodes_.reserve(num_switches);
  for (unsigned i = 0; i < num_switches; ++i) {
    Node n;
    n.dp = std::make_unique<FlyMonDataPlane>(groups_per_switch, cfg);
    n.ctl = std::make_unique<Controller>(*n.dp);
    nodes_.push_back(std::move(n));
  }
}

NetworkFlyMon::NetworkTask NetworkFlyMon::deploy_everywhere(const TaskSpec& spec) {
  NetworkTask t;
  t.spec = spec;
  for (unsigned i = 0; i < nodes_.size(); ++i) {
    const DeployResult r = nodes_[i].ctl->add_task(spec);
    if (!r.ok) {
      t.error = "switch " + std::to_string(i) + ": " + r.error;
      // All-or-nothing: roll back the switches already configured.
      for (unsigned j = 0; j < i; ++j) nodes_[j].ctl->remove_task(t.per_switch_id[j]);
      t.per_switch_id.clear();
      return t;
    }
    t.per_switch_id.push_back(r.task_id);
    t.worst_deploy_ms = std::max(t.worst_deploy_ms, r.report.delay_ms());
  }
  t.ok = true;
  return t;
}

void NetworkFlyMon::remove_everywhere(const NetworkTask& t) {
  for (unsigned i = 0; i < t.per_switch_id.size() && i < nodes_.size(); ++i) {
    nodes_[i].ctl->remove_task(t.per_switch_id[i]);
  }
}

unsigned NetworkFlyMon::route(const Packet& p) const noexcept {
  return static_cast<unsigned>(hash64_value(p.ft, 0xEC3Full) % nodes_.size());
}

void NetworkFlyMon::process(const Packet& p) { nodes_[route(p)].dp->process(p); }

void NetworkFlyMon::clear_all_registers() {
  for (auto& n : nodes_) n.dp->clear_registers();
}

std::uint64_t NetworkFlyMon::query_value_sum(const NetworkTask& t,
                                             const Packet& probe) const {
  std::uint64_t sum = 0;
  for (unsigned i = 0; i < nodes_.size(); ++i) {
    sum += nodes_[i].ctl->query_value(t.per_switch_id[i], probe);
  }
  return sum;
}

std::uint64_t NetworkFlyMon::query_value_max(const NetworkTask& t,
                                             const Packet& probe) const {
  std::uint64_t best = 0;
  for (unsigned i = 0; i < nodes_.size(); ++i) {
    best = std::max(best, nodes_[i].ctl->query_value(t.per_switch_id[i], probe));
  }
  return best;
}

bool NetworkFlyMon::query_existence_any(const NetworkTask& t, const Packet& probe) const {
  for (unsigned i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].ctl->query_existence(t.per_switch_id[i], probe)) return true;
  }
  return false;
}

double NetworkFlyMon::estimate_cardinality_sum(const NetworkTask& t) const {
  double sum = 0;
  for (unsigned i = 0; i < nodes_.size(); ++i) {
    sum += nodes_[i].ctl->estimate_cardinality(t.per_switch_id[i]);
  }
  return sum;
}

bool NetworkFlyMon::distinct_over_threshold_any(const NetworkTask& t,
                                                const Packet& probe) const {
  for (unsigned i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].ctl->distinct_over_threshold(t.per_switch_id[i], probe)) return true;
  }
  return false;
}

std::vector<FlowKeyValue> NetworkFlyMon::detect_over_threshold(
    const NetworkTask& t, const std::vector<FlowKeyValue>& candidates,
    std::uint64_t threshold) const {
  std::vector<FlowKeyValue> out;
  for (const FlowKeyValue& k : candidates) {
    const Packet probe = packet_from_candidate_key(k.bytes);
    const bool hit = t.spec.algorithm == Algorithm::kBeauCoup
                         ? distinct_over_threshold_any(t, probe)
                         : query_value_sum(t, probe) >= threshold;
    if (hit) out.push_back(k);
  }
  return out;
}

}  // namespace flymon::control
