// Deployment accounting: runtime rules generated for a task and the
// resulting install delay (paper §5.1, Table 3).
#pragma once

#include <cstdint>
#include <string>

#include "dataplane/tofino_model.hpp"

namespace flymon::control {

struct DeploymentReport {
  unsigned table_rules = 0;      ///< ordinary match-action entries
  unsigned hash_mask_rules = 0;  ///< dynamic-hashing reconfigurations
  unsigned groups_used = 0;      ///< CMU Groups touched
  unsigned cmus_used = 0;

  /// Install delay: the control plane batches each rule kind; the two
  /// kinds install concurrently (paper: batching masks deployment delay).
  double delay_ms() const {
    using dataplane::RuleInstallModel;
    const double mask = RuleInstallModel::batched_ms(RuleInstallModel::kHashMaskRuleMs,
                                                     hash_mask_rules);
    const double table =
        RuleInstallModel::batched_ms(RuleInstallModel::kTableRuleMs, table_rules);
    return mask > table ? mask : table;
  }
};

}  // namespace flymon::control
