file(REMOVE_RECURSE
  "libflymon_packet.a"
)
