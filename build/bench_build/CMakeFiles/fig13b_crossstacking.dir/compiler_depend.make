# Empty compiler generated dependencies file for fig13b_crossstacking.
# This may be replaced when dependencies are built.
