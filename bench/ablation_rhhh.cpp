// Extension bench: Randomized Hierarchical Heavy Hitters composed from
// FlyMon frequency tasks sharing CMUs through probabilistic execution —
// the RHHH entry of the paper's Fig 5 algorithm list, measured against
// exact hierarchical ground truth.
#include <unordered_set>

#include "bench/bench_util.hpp"
#include "control/rhhh.hpp"

using namespace flymon;

namespace {

/// Exact HHH: residual frequency per prefix level, finest first.
std::vector<std::pair<std::uint8_t, FlowKeyValue>> exact_hhh(
    const std::vector<Packet>& trace, const std::vector<std::uint8_t>& levels,
    std::uint64_t threshold) {
  std::vector<std::pair<std::uint8_t, FlowKeyValue>> out;
  std::unordered_map<FlowKeyValue, std::uint64_t> discount;
  for (std::size_t li = levels.size(); li-- > 0;) {
    const FlowKeySpec spec = FlowKeySpec::src_ip(levels[li]);
    const FreqMap freq = ExactStats::frequency(trace, spec);
    for (const auto& [prefix, total] : freq) {
      const auto it = discount.find(prefix);
      const std::uint64_t residual =
          total > (it == discount.end() ? 0 : it->second)
              ? total - (it == discount.end() ? 0 : it->second)
              : 0;
      if (residual < threshold) continue;
      out.emplace_back(levels[li], prefix);
      for (std::size_t aj = 0; aj < li; ++aj) {
        discount[mask_candidate_key(prefix.bytes, FlowKeySpec::src_ip(levels[aj]))] +=
            residual;
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::header("Extension: RHHH",
                "Hierarchical heavy hitters via probabilistic execution");

  const std::vector<std::uint8_t> levels = {8, 16, 24, 32};
  constexpr std::uint64_t kThreshold = 8192;

  TraceConfig cfg;
  cfg.num_flows = 20'000;
  cfg.num_packets = 1'000'000;
  cfg.zipf_alpha = 1.1;
  const auto trace = TraceGenerator::generate(cfg);
  const auto truth = exact_hhh(trace, levels, kThreshold);
  std::printf("trace: %zu pkts; %zu true HHHs at threshold %llu\n\n", trace.size(),
              truth.size(), static_cast<unsigned long long>(kThreshold));

  std::printf("%12s %10s %10s %10s\n", "buckets/task", "reported", "true-pos",
              "F1");
  for (std::uint32_t buckets : {2048u, 4096u, 8192u, 16384u}) {
    FlyMonDataPlane dp(9);
    control::Controller ctl(dp);
    const auto task = control::RhhhTask::deploy(ctl, levels, buckets);
    if (!task.ok()) {
      std::printf("%12u deploy failed: %s\n", buckets, task.error().c_str());
      continue;
    }
    dp.process_all(trace);

    std::vector<FlowKeyValue> candidates;
    {
      std::unordered_set<FlowKeyValue> seen;
      for (const Packet& p : trace) {
        const auto k = extract_flow_key(p, FlowKeySpec::src_ip());
        if (seen.insert(k).second) candidates.push_back(k);
      }
    }
    const auto reports = task.hierarchical_heavy_hitters(ctl, candidates, kThreshold);

    std::unordered_set<FlowKeyValue> truth_keys;
    for (const auto& [len, k] : truth) truth_keys.insert(k);
    std::size_t tp = 0;
    for (const auto& r : reports) tp += truth_keys.count(r.key);
    const double precision = reports.empty() ? 0.0 : double(tp) / reports.size();
    const double recall = truth.empty() ? 0.0 : double(tp) / truth.size();
    const double f1 =
        precision + recall > 0 ? 2 * precision * recall / (precision + recall) : 0.0;
    std::printf("%12u %10zu %10zu %10.3f\n", buckets, reports.size(), tp, f1);
  }
  std::printf("\n(each of the 4 prefix levels samples 1/4 of the packets on "
              "shared CMUs; estimates are rescaled at readout)\n");
  return 0;
}
