// Ternary content-addressable memory (TCAM) table model.
//
// Entries match a 64-bit key against (value, mask) with priority; the
// highest-priority (lowest number, then earliest installed) match wins.
// Range matches are realised by prefix expansion, exactly as hardware does,
// so entry counts reflect the true TCAM cost of range rules (paper §3.3).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dataplane/tofino_model.hpp"

namespace flymon::dataplane {

/// A single ternary (value, mask) pattern: key matches iff
/// (key & mask) == (value & mask).
struct TernaryPattern {
  std::uint64_t value = 0;
  std::uint64_t mask = 0;

  bool matches(std::uint64_t key) const noexcept { return (key & mask) == (value & mask); }
  friend bool operator==(const TernaryPattern&, const TernaryPattern&) = default;
};

/// Expand the integer range [lo, hi] (inclusive) over a `width`-bit key into
/// a minimal set of ternary prefix patterns (the classic aligned-block
/// decomposition used for TCAM range expansion).
std::vector<TernaryPattern> range_to_ternary(std::uint64_t lo, std::uint64_t hi,
                                             unsigned width);

/// TCAM blocks needed for `entries` entries with a `key_bits`-wide key.
constexpr unsigned tcam_blocks_for(std::size_t entries, unsigned key_bits) {
  const unsigned depth_blocks = static_cast<unsigned>(
      (entries + TofinoModel::kTcamBlockEntries - 1) / TofinoModel::kTcamBlockEntries);
  const unsigned width_blocks =
      (key_bits + TofinoModel::kTcamBlockKeyBits - 1) / TofinoModel::kTcamBlockKeyBits;
  return depth_blocks * width_blocks;
}

/// Priority-ordered ternary match table with per-entry payload.
template <typename Payload>
class TcamTable {
 public:
  struct Entry {
    TernaryPattern pattern;
    std::uint32_t priority = 0;  ///< lower value = higher priority
    Payload action{};
  };

  /// Install one entry (a runtime table rule).
  void install(TernaryPattern pattern, std::uint32_t priority, Payload action) {
    entries_.push_back(Entry{pattern, priority, std::move(action)});
  }

  /// Install a range rule; returns how many ternary entries it expanded to.
  std::size_t install_range(std::uint64_t lo, std::uint64_t hi, unsigned width,
                            std::uint32_t priority, const Payload& action) {
    const auto patterns = range_to_ternary(lo, hi, width);
    for (const auto& p : patterns) install(p, priority, action);
    return patterns.size();
  }

  /// Remove every entry whose payload satisfies `pred`; returns count removed.
  template <typename Pred>
  std::size_t remove_if(Pred pred) {
    const auto it = std::remove_if(entries_.begin(), entries_.end(),
                                   [&](const Entry& e) { return pred(e.action); });
    const std::size_t n = static_cast<std::size_t>(entries_.end() - it);
    entries_.erase(it, entries_.end());
    return n;
  }

  void clear() noexcept { entries_.clear(); }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Highest-priority match, or nullptr (caller applies the default action).
  const Payload* lookup(std::uint64_t key) const noexcept {
    const Entry* best = nullptr;
    for (const Entry& e : entries_) {
      if (!e.pattern.matches(key)) continue;
      if (best == nullptr || e.priority < best->priority) best = &e;
    }
    return best ? &best->action : nullptr;
  }

  const std::vector<Entry>& entries() const noexcept { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace flymon::dataplane
