
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_address_translation.cpp" "bench_build/CMakeFiles/fig11_address_translation.dir/fig11_address_translation.cpp.o" "gcc" "bench_build/CMakeFiles/fig11_address_translation.dir/fig11_address_translation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flymon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/flymon_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/flymon_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/flymon_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/flymon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/flymon_control.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/flymon_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
