file(REMOVE_RECURSE
  "CMakeFiles/test_cmu.dir/test_cmu.cpp.o"
  "CMakeFiles/test_cmu.dir/test_cmu.cpp.o.d"
  "test_cmu"
  "test_cmu.pdb"
  "test_cmu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
