// A small SSA-like intermediate representation of one deployed pipeline
// snapshot, extracted from a (Controller, FlyMonDataPlane) pair.  Each CMU
// task entry becomes a dataflow chain
//
//   header-field sources -> hash-unit masks -> compressed key (XOR of up to
//   two units) -> key slice -> address translation -> SALU operation
//
// with two abstract domains attached: per-node candidate-key bit sets
// (provenance/taint over the 136-bit candidate key) and unsigned intervals
// (value ranges of SALU parameters).  The semantic analyzers in
// src/verify/dataflow_*.cpp interpret this IR; nothing here executes a
// packet.
#pragma once

#include <bitset>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/cmu.hpp"
#include "core/compression.hpp"
#include "core/flymon_dataplane.hpp"
#include "core/memory_partition.hpp"
#include "core/task.hpp"
#include "packet/flowkey.hpp"
#include "packet/packet.hpp"

namespace flymon::control {
class Controller;
}  // namespace flymon::control

namespace flymon::ir {

/// Taint domain: one bit per candidate-key bit (136 = 17 bytes).
using KeyBitSet = std::bitset<kCandidateKeyBits>;

/// Lift a candidate-key byte mask into the taint domain.
KeyBitSet key_bits(const CandidateKey& mask) noexcept;

/// Taint footprint of a flow-key spec (= key_bits of its byte mask).
KeyBitSet spec_bits(const FlowKeySpec& spec) noexcept;

/// The flow-key spec a task addresses buckets with: its own key, or the
/// parameter's key for single-key (cardinality-style) tasks.
inline FlowKeySpec addressed_key(const TaskSpec& spec) {
  return spec.key.empty() ? spec.param.key_spec : spec.key;
}

/// Unsigned interval [lo, hi], the value-range abstract domain.  All
/// arithmetic saturates at 2^64-1 so widening is always sound.
struct Interval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  static Interval exact(std::uint64_t v) noexcept { return {v, v}; }
  static Interval full32() noexcept { return {0, 0xFFFF'FFFFull}; }
  bool singleton() const noexcept { return lo == hi; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) noexcept;
std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) noexcept;

/// One physical hash unit of a group's compression stage.
struct HashUnitNode {
  unsigned group = 0;
  unsigned unit = 0;
  bool configured = false;
  FlowKeySpec spec{};      ///< meaningful iff configured
  KeyBitSet sources;       ///< candidate-key bits that influence the output
};

/// A dynamic key as one CMU entry selects it: XOR of up to two compressed
/// keys, then a bit slice.  A CRC32 hash fully diffuses its input, so any
/// non-empty slice of the output depends on *all* unmasked input bits —
/// provenance through the slice is the union of the contributing units'
/// masks, except when the XOR cancels (both operands are the same unit).
struct KeyExpr {
  CompressedKeySelector sel{};
  KeySlice slice{};
  KeyBitSet sources;              ///< provenance after XOR cancellation
  bool self_cancelling = false;   ///< unit_a == unit_b: key is constant 0
  bool reads_unconfigured = false;///< selector references a cleared unit
};

/// A SALU parameter with its value range.
struct ParamExpr {
  ParamSelect::Source source = ParamSelect::Source::kConst;
  Interval range{};
  bool chain_derived = false;  ///< value flows in from a chain channel
};

/// Address translation of one entry: `eff_width` significant sliced-key
/// bits mapped onto a power-of-two partition (paper §3.3).  Addresses can
/// never escape the partition (the translation masks by size-1); what *can*
/// go wrong statically is a slice too narrow for the partition, leaving
/// upper cells permanently cold.
struct AddressExpr {
  unsigned eff_width = 0;          ///< min(slice.width, 32 - slice.offset)
  std::uint64_t reachable_cells = 0;
  bool in_bounds = false;          ///< partition fits the register array
};

/// One installed CMU task entry lowered to IR.
struct EntryNode {
  unsigned group = 0;
  unsigned cmu = 0;
  std::uint32_t phys_id = 0;
  bool owned = false;        ///< referenced by a controller task placement
  std::uint32_t task_id = 0; ///< public controller id when owned
  std::size_t row = 0;       ///< row index within the owning task

  KeyExpr key;
  ParamExpr p1, p2;
  PrepFn prep = PrepFn::kNone;
  bool chained = false;      ///< consumes or produces chain channels
  dataplane::StatefulOp op = dataplane::StatefulOp::kNop;
  MemoryPartition partition{};
  AddressExpr address;
  std::uint32_t value_mask = 0;   ///< register bucket value mask
  std::uint64_t register_size = 0;
};

/// One controller task with indices of its entries in PipelineIr::entries.
struct TaskNode {
  std::uint32_t id = 0;
  Algorithm algorithm = Algorithm::kAuto;
  TaskSpec spec{};
  std::uint32_t buckets = 0;  ///< quantized per-row buckets
  unsigned rows = 0;
  std::vector<std::size_t> entries;
};

struct PipelineIr {
  std::vector<HashUnitNode> units;  ///< group-major, units_per_group each
  unsigned units_per_group = 0;
  std::vector<EntryNode> entries;
  std::vector<TaskNode> tasks;
  std::uint64_t packets_per_epoch = 0;

  const HashUnitNode* unit(unsigned group, unsigned unit) const noexcept;
  const EntryNode* find_entry(unsigned group, unsigned cmu,
                              std::uint32_t phys_id) const noexcept;
};

/// Extract the IR from a data-plane snapshot.  `ctl` may be null (entries
/// are still lowered, but task nodes and ownership are absent).
/// `packets_per_epoch` bounds per-epoch Cond-ADD accumulation for the
/// value-range analysis.
PipelineIr extract_ir(const FlyMonDataPlane& dp,
                      const control::Controller* ctl,
                      std::uint64_t packets_per_epoch);

/// Walk every installed CMU entry in pipeline order: group-major, CMU-major,
/// priority (installation) order within a CMU.  This enumeration is the
/// single source of truth for "what is deployed" — the IR builder lowers
/// analyzer nodes from it and exec::PlanCompiler lowers compiled entries
/// from it, so the static analyses and the compiled hot path can never
/// disagree about the entry set or its evaluation order.  `Dp` may be const
/// (analyzers) or mutable (the compiler resolves counter handles).
template <typename Dp, typename Fn>
void for_each_installed_entry(Dp& dp, Fn&& fn) {
  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    auto& grp = dp.group(g);
    for (unsigned c = 0; c < grp.num_cmus(); ++c) {
      auto& cmu = grp.cmu(c);
      for (const CmuTaskEntry& e : cmu.entries()) fn(g, c, cmu, e);
    }
  }
}

}  // namespace flymon::ir
