# Empty dependencies file for test_shell_adaptive.
# This may be replaced when dependencies are built.
