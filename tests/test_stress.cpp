// Stress and failure-injection suites: extreme inputs, degenerate
// configurations, randomized long-running scenarios and hostile shell
// input, all of which must be survived without exceptions or invariant
// violations.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.hpp"
#include "control/shell.hpp"
#include "packet/trace_gen.hpp"

namespace flymon {
namespace {

// -------- extreme packets --------

std::vector<Packet> hostile_packets() {
  std::vector<Packet> out;
  Packet zero{};  // every field zero
  out.push_back(zero);
  Packet maxed;
  maxed.ft = FiveTuple{0xFFFFFFFF, 0xFFFFFFFF, 0xFFFF, 0xFFFF, 0xFF};
  maxed.wire_bytes = 0xFFFFFFFF;
  maxed.ts_ns = ~std::uint64_t{0};
  maxed.queue_len = 0xFFFFFFFF;
  maxed.queue_delay_ns = 0xFFFFFFFF;
  out.push_back(maxed);
  Packet same_ts;  // many identical packets at the same instant
  same_ts.ft.src_ip = 0x0A000001;
  for (int i = 0; i < 100; ++i) out.push_back(same_ts);
  return out;
}

TEST(Stress, HostilePacketsThroughEveryAttribute) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);

  TaskSpec f;
  f.key = FlowKeySpec::five_tuple();
  f.attribute = AttributeKind::kFrequency;
  f.param = ParamSpec::metadata(MetaField::kWireBytes);
  f.memory_buckets = 4096;
  f.rows = 3;
  ASSERT_TRUE(ctl.add_task(f).ok);

  TaskSpec m;
  m.key = FlowKeySpec::src_ip();
  m.attribute = AttributeKind::kMax;
  m.param = ParamSpec::metadata(MetaField::kQueueDelay);
  m.filter = TaskFilter::dst(0, 0);  // wildcard via dst dimension
  m.memory_buckets = 4096;
  m.rows = 2;
  // Wildcard filters intersect, so this must land on a different group.
  const auto rm2 = ctl.add_task(m);
  ASSERT_TRUE(rm2.ok) << rm2.error;
  EXPECT_NE(ctl.task(rm2.task_id)->rows[0].units[0].group, 0u);

  for (const Packet& p : hostile_packets()) {
    EXPECT_NO_THROW(dp.process(p));
  }
  // Queries on hostile probes never throw either.
  for (const Packet& p : hostile_packets()) {
    EXPECT_NO_THROW((void)ctl.query_value(rm2.task_id, p));
  }
}

TEST(Stress, SaturatingCountersStayPinned) {
  FlyMonDataPlane dp(1);
  control::Controller ctl(dp);
  TaskSpec s;
  s.key = FlowKeySpec::src_ip();
  s.attribute = AttributeKind::kFrequency;
  s.param = ParamSpec::metadata(MetaField::kWireBytes);  // 4 GB/packet max
  s.memory_buckets = 64;
  s.rows = 1;
  const auto r = ctl.add_task(s);
  ASSERT_TRUE(r.ok);
  Packet p;
  p.ft.src_ip = 0x0A000001;
  p.wire_bytes = 0xFFFFFFFF;
  for (int i = 0; i < 10; ++i) dp.process(p);
  EXPECT_EQ(ctl.query_value(r.task_id, p), 0xFFFFFFFFull)
      << "32-bit registers saturate rather than wrap";
}

TEST(Stress, TinyAndHugeRegisters) {
  // Degenerate register geometries must work end to end.
  for (std::uint32_t buckets : {32u, 64u, 1u << 18}) {
    CmuGroupConfig cfg;
    cfg.register_buckets = buckets;
    FlyMonDataPlane dp(1, cfg);
    control::Controller ctl(dp);
    TaskSpec s;
    s.key = FlowKeySpec::src_ip();
    s.attribute = AttributeKind::kFrequency;
    s.memory_buckets = buckets;
    s.rows = 1;
    const auto r = ctl.add_task(s);
    ASSERT_TRUE(r.ok) << buckets << ": " << r.error;
    Packet p;
    p.ft.src_ip = 0x0A000001;
    dp.process(p);
    EXPECT_EQ(ctl.query_value(r.task_id, p), 1u) << buckets;
  }
}

// -------- randomized long-running scenario --------

TEST(Stress, RandomizedLifecycleScenario) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  Rng rng(20260706);

  TraceConfig cfg;
  cfg.num_flows = 500;
  cfg.num_packets = 2000;
  const auto trace = TraceGenerator::generate(cfg);

  std::vector<std::uint32_t> live;
  unsigned deploys = 0, removals = 0, resizes = 0, splits = 0;
  for (int step = 0; step < 400; ++step) {
    const double dice = rng.next_double();
    if (dice < 0.35) {
      TaskSpec s;
      s.filter = TaskFilter::src(rng.next_u32() & 0xFFFF0000, 16);
      s.key = rng.next_bool(0.5) ? FlowKeySpec::five_tuple() : FlowKeySpec::src_ip();
      s.attribute = static_cast<AttributeKind>(rng.next_below(4));
      if (s.attribute == AttributeKind::kDistinct) {
        s.param = ParamSpec::compressed(FlowKeySpec::src_ip());
        s.key = FlowKeySpec::dst_ip();
        s.report_threshold = 64;
      } else if (s.attribute == AttributeKind::kExistence) {
        s.param = ParamSpec::compressed(FlowKeySpec::five_tuple());
      } else if (s.attribute == AttributeKind::kMax) {
        s.param = ParamSpec::metadata(MetaField::kQueueLen);
      }
      s.memory_buckets = 1u << (10 + rng.next_below(4));
      s.rows = 1 + static_cast<unsigned>(rng.next_below(3));
      const auto r = ctl.add_task(s);
      if (r.ok) {
        live.push_back(r.task_id);
        ++deploys;
      }
    } else if (dice < 0.55 && !live.empty()) {
      const std::size_t i = rng.next_below(live.size());
      EXPECT_TRUE(ctl.remove_task(live[i]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      ++removals;
    } else if (dice < 0.7 && !live.empty()) {
      const std::uint32_t id = live[rng.next_below(live.size())];
      const auto r = ctl.resize_task(id, 1u << (10 + rng.next_below(5)));
      resizes += r.ok;
    } else if (dice < 0.8 && !live.empty()) {
      const std::size_t i = rng.next_below(live.size());
      const auto [lo, hi] = ctl.split_task(live[i]);
      if (lo.ok && hi.ok) {
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        live.push_back(lo.task_id);
        live.push_back(hi.task_id);
        ++splits;
      }
    } else {
      // Traffic between reconfigurations, plus random probes.
      for (int i = 0; i < 50; ++i) dp.process(trace[rng.next_below(trace.size())]);
      if (!live.empty()) {
        const std::uint32_t id = live[rng.next_below(live.size())];
        const Packet& probe = trace[rng.next_below(trace.size())];
        EXPECT_NO_THROW((void)ctl.query_value(id, probe));
      }
    }
  }
  EXPECT_GT(deploys, 20u);
  EXPECT_GT(removals, 10u);
  EXPECT_GT(resizes, 5u);

  // Tear everything down: resources must be fully conserved.
  for (std::uint32_t id : live) EXPECT_TRUE(ctl.remove_task(id));
  for (unsigned g = 0; g < dp.num_groups(); ++g) {
    for (unsigned c = 0; c < dp.group(g).num_cmus(); ++c) {
      EXPECT_EQ(ctl.free_buckets(g, c), dp.group(g).config().register_buckets);
      EXPECT_TRUE(dp.group(g).cmu(c).entries().empty());
    }
  }
}

// -------- hostile shell input --------

TEST(Stress, ShellSurvivesGarbage) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  control::Shell shell(ctl);
  const char* hostile[] = {
      "add",
      "add attr=",
      "add key= attr=Frequency",
      "add key=SrcIP attr=Frequency mem=0",
      "add key=SrcIP attr=Frequency mem=99999999999999999999",
      "remove -1",
      "remove 4294967296",
      "resize 1",
      "resize a b",
      "query",
      "query 1 src=999.999.999.999",
      "split",
      "occupancy x",
      "\t  \n",
      "add key=SrcIP+SrcIP attr=Frequency",
      "rebalance rebalance rebalance",
  };
  for (const char* line : hostile) {
    EXPECT_NO_THROW((void)shell.execute(line)) << line;
  }
  EXPECT_EQ(ctl.num_tasks(), 0u) << "no hostile line may deploy anything";
}

TEST(Stress, ShellRandomFuzz) {
  FlyMonDataPlane dp(9);
  control::Controller ctl(dp);
  control::Shell shell(ctl);
  Rng rng(99);
  const char* words[] = {"add",  "remove", "query", "key=SrcIP", "attr=Max",
                         "src=", "1",      "mem=",  "=",         "10.0.0.1",
                         "///",  "rows=2", "stats", "list",      "\x7f"};
  for (int i = 0; i < 500; ++i) {
    std::string line;
    const std::size_t n = rng.next_below(6);
    for (std::size_t w = 0; w < n; ++w) {
      line += words[rng.next_below(std::size(words))];
      line += ' ';
    }
    EXPECT_NO_THROW((void)shell.execute(line)) << line;
  }
}

// -------- trace generator edge configs --------

TEST(Stress, DegenerateTraceConfigs) {
  TraceConfig one;
  one.num_flows = 1;
  one.num_packets = 1;
  EXPECT_EQ(TraceGenerator::generate(one).size(), 1u);

  TraceConfig none;
  none.num_flows = 1;
  none.num_packets = 0;
  EXPECT_TRUE(TraceGenerator::generate(none).empty());

  TraceConfig flat;
  flat.num_flows = 10;
  flat.num_packets = 100;
  flat.zipf_alpha = 0.0;
  flat.vary_packet_size = false;
  for (const Packet& p : TraceGenerator::generate(flat)) {
    EXPECT_EQ(p.wire_bytes, 1000u);
  }
}

}  // namespace
}  // namespace flymon
