// CMU Group (paper §3.2, Fig 7): three CMUs sharing one compression stage,
// expanded into four pipeline stages (Compression / Initialization /
// Preparation / Operation) with distinct dominant resources so that groups
// can be cross-stacked across MAU stages.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/cmu.hpp"
#include "core/compression.hpp"
#include "dataplane/mau_stage.hpp"

namespace flymon {

struct CmuGroupConfig {
  unsigned num_cmus = 3;
  /// Hash units used by the compression stage.  The paper's Tofino build
  /// allocates 6 units per group: 3 here and 3 in the operation stage for
  /// SALU addressing (footnote 4).
  unsigned compression_units = 3;
  std::uint32_t register_buckets = 65536;  ///< per-CMU stateful memory
};

/// Indices of the four CMU-Group stages.
enum class GroupStage : std::uint8_t { kCompression = 0, kInitialization, kPreparation, kOperation };

class CmuGroup {
 public:
  explicit CmuGroup(unsigned group_id, const CmuGroupConfig& cfg = {});

  unsigned id() const noexcept { return id_; }
  const CmuGroupConfig& config() const noexcept { return cfg_; }

  CompressionStage& compression() noexcept { return compression_; }
  const CompressionStage& compression() const noexcept { return compression_; }

  unsigned num_cmus() const noexcept { return static_cast<unsigned>(cmus_.size()); }
  Cmu& cmu(unsigned i) { return cmus_.at(i); }
  const Cmu& cmu(unsigned i) const { return cmus_.at(i); }

  /// Compressed keys of one packet (the compression stage's output).
  std::vector<std::uint32_t> compute_keys(const CandidateKey& key) const {
    return compression_.compute(key);
  }

  /// Run the packet through all CMUs of this group.
  void process(const Packet& pkt, PhvContext& ctx);

  /// Per-stage resource demands (paper Fig 8 table), used by the
  /// cross-stacking planner and the overhead experiments.
  static std::array<dataplane::StageDemand, 4> stage_demands(const CmuGroupConfig& cfg = {});

  /// PHV bits a group occupies (compressed keys + chain metadata).
  static unsigned phv_bits(const CmuGroupConfig& cfg = {});

  /// (Re)bind this group's and its CMUs' counters into `registry`.
  void bind_telemetry(telemetry::Registry& registry);

  // ---- snapshot accessors for the plan compiler (src/exec) ----
  telemetry::Counter* packets_counter() const noexcept { return packets_counter_; }
  telemetry::Counter* hash_counter() const noexcept { return hash_counter_; }

 private:
  unsigned id_;
  CmuGroupConfig cfg_;
  CompressionStage compression_;
  std::vector<Cmu> cmus_;
  telemetry::Counter* packets_counter_ = nullptr;
  telemetry::Counter* hash_counter_ = nullptr;
};

}  // namespace flymon
