file(REMOVE_RECURSE
  "CMakeFiles/test_sketch_distinct.dir/test_sketch_distinct.cpp.o"
  "CMakeFiles/test_sketch_distinct.dir/test_sketch_distinct.cpp.o.d"
  "test_sketch_distinct"
  "test_sketch_distinct.pdb"
  "test_sketch_distinct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sketch_distinct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
