file(REMOVE_RECURSE
  "../bench/ablation_xor_keys"
  "../bench/ablation_xor_keys.pdb"
  "CMakeFiles/ablation_xor_keys.dir/ablation_xor_keys.cpp.o"
  "CMakeFiles/ablation_xor_keys.dir/ablation_xor_keys.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_xor_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
