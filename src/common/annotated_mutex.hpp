// std::mutex wrapped as a Clang thread-safety `capability`, plus the
// matching scoped lock.  libstdc++'s std::mutex carries no capability
// attribute, so FLYMON_GUARDED_BY(some_std_mutex) would be inert; guarding
// against this wrapper makes `clang++ -Wthread-safety` actually prove the
// lock discipline (see thread_annotations.hpp for the CI wiring).
//
// The wrapper is layout- and cost-identical to the std::mutex it holds:
// lock()/unlock() inline into the pthread calls.  It deliberately does NOT
// satisfy BasicLockable for std::unique_lock + condition_variable use —
// cv-driven mutexes stay std::mutex and document their protocol in
// comments, because the analysis cannot track a lock handed to a cv wait.
#pragma once

#include <mutex>

#include "common/thread_annotations.hpp"

namespace flymon::common {

class FLYMON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FLYMON_ACQUIRE() { mu_.lock(); }
  void unlock() FLYMON_RELEASE() { mu_.unlock(); }
  bool try_lock() FLYMON_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::lock_guard for Mutex, visible to the thread-safety analysis.
class FLYMON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FLYMON_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FLYMON_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace flymon::common
