file(REMOVE_RECURSE
  "CMakeFiles/test_sketch_frequency.dir/test_sketch_frequency.cpp.o"
  "CMakeFiles/test_sketch_frequency.dir/test_sketch_frequency.cpp.o.d"
  "test_sketch_frequency"
  "test_sketch_frequency.pdb"
  "test_sketch_frequency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sketch_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
