#include <gtest/gtest.h>

#include "analysis/metrics.hpp"

namespace flymon::analysis {
namespace {

FlowKeyValue k(std::uint8_t id) {
  FlowKeyValue v;
  v.bytes[0] = id;
  return v;
}

TEST(Metrics, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(100, 110), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(100, 90), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(0, 5), 1.0);
}

TEST(Metrics, AverageRelativeError) {
  EXPECT_DOUBLE_EQ(average_relative_error({}), 0.0);
  EXPECT_DOUBLE_EQ(average_relative_error({{100, 110}, {100, 130}}), 0.2);
  // Zero-truth pairs are skipped.
  EXPECT_DOUBLE_EQ(average_relative_error({{0, 10}, {100, 110}}), 0.1);
}

TEST(Metrics, PrecisionRecallF1) {
  ClassificationScore s;
  s.true_positives = 8;
  s.false_positives = 2;
  s.false_negatives = 2;
  EXPECT_DOUBLE_EQ(s.precision(), 0.8);
  EXPECT_DOUBLE_EQ(s.recall(), 0.8);
  EXPECT_DOUBLE_EQ(s.f1(), 0.8);
}

TEST(Metrics, F1EdgeCases) {
  ClassificationScore empty;
  EXPECT_DOUBLE_EQ(empty.f1(), 0.0);
  ClassificationScore perfect;
  perfect.true_positives = 5;
  EXPECT_DOUBLE_EQ(perfect.f1(), 1.0);
}

TEST(Metrics, ScoreDetection) {
  const std::vector<FlowKeyValue> truth = {k(1), k(2), k(3)};
  const std::vector<FlowKeyValue> reported = {k(2), k(3), k(4)};
  const auto s = score_detection(truth, reported);
  EXPECT_EQ(s.true_positives, 2u);
  EXPECT_EQ(s.false_positives, 1u);
  EXPECT_EQ(s.false_negatives, 1u);
}

TEST(Metrics, ScoreDetectionDedupesReports) {
  const std::vector<FlowKeyValue> truth = {k(1)};
  const std::vector<FlowKeyValue> reported = {k(1), k(1), k(1)};
  const auto s = score_detection(truth, reported);
  EXPECT_EQ(s.true_positives, 1u);
  EXPECT_EQ(s.false_positives, 0u);
}

TEST(Metrics, PerfectAndEmptyDetection) {
  const std::vector<FlowKeyValue> truth = {k(1), k(2)};
  EXPECT_DOUBLE_EQ(score_detection(truth, truth).f1(), 1.0);
  EXPECT_DOUBLE_EQ(score_detection(truth, {}).f1(), 0.0);
  EXPECT_DOUBLE_EQ(score_detection({}, {}).f1(), 0.0);
}

TEST(Metrics, FalsePositiveRate) {
  EXPECT_DOUBLE_EQ(false_positive_rate(5, 100), 0.05);
  EXPECT_DOUBLE_EQ(false_positive_rate(0, 0), 0.0);
}

TEST(Metrics, FrequencyAreHelper) {
  FreqMap truth;
  truth[k(1)] = 100;
  truth[k(2)] = 200;
  const double are = frequency_are(truth, [](const FlowKeyValue& key) {
    return key.bytes[0] == 1 ? 110.0 : 200.0;
  });
  EXPECT_DOUBLE_EQ(are, 0.05);
}

}  // namespace
}  // namespace flymon::analysis
