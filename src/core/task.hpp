// Measurement-task abstraction (paper §2.1, Table 1): a task is a traffic
// filter, a flow key, an attribute with parameters, and a memory size.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "packet/exact.hpp"
#include "packet/flowkey.hpp"
#include "packet/packet.hpp"

namespace flymon {

/// Which flow statistic a task measures (paper §2.1).
enum class AttributeKind : std::uint8_t {
  kFrequency,   ///< accumulate a parameter per key (per-flow size, HH, ...)
  kDistinct,    ///< count distinct parameter values per key (DDoS, cardinality)
  kExistence,   ///< set membership of the parameter (blacklist)
  kMax,         ///< maximum parameter per key (congestion, HOL, interval)
  kSimilarity,  ///< parity of distinct parameters — Odd Sketch extension (§6)
};

const char* to_string(AttributeKind a) noexcept;

/// Built-in algorithms selectable per attribute (paper Fig 6 / Table 3).
enum class Algorithm : std::uint8_t {
  kAuto = 0,        ///< compiler picks the default for the attribute
  kCms,             ///< Frequency
  kSuMaxSum,        ///< Frequency, conservative update (3 CMU Groups)
  kMrac,            ///< Frequency (distribution / entropy analysis)
  kTowerSketch,     ///< Frequency, layered counter widths
  kCounterBraids,   ///< Frequency, two-layer overflow counters
  kBeauCoup,        ///< Distinct (multi-key)
  kHyperLogLog,     ///< Distinct (single-key)
  kLinearCounting,  ///< Distinct (bitmap-based)
  kBloomFilter,     ///< Existence
  kSuMaxMax,        ///< Max
  kMaxInterarrival, ///< Max of packet inter-arrival (composite, 3 CMUs)
  kOddSketch,       ///< Similarity (XOR reserved-slot extension, 2 CMUs)
};

const char* to_string(Algorithm a) noexcept;

/// Traffic filter: source/destination IPv4 prefixes (both optional).
/// Tasks co-located on one CMU must have non-intersecting filters
/// (paper §3.3, "Limitation of Address Translation").
struct TaskFilter {
  std::uint32_t src_ip = 0;
  std::uint8_t src_len = 0;  ///< 0 = wildcard
  std::uint32_t dst_ip = 0;
  std::uint8_t dst_len = 0;

  static TaskFilter any() { return {}; }
  static TaskFilter src(std::uint32_t ip, std::uint8_t len) { return {ip, len, 0, 0}; }
  static TaskFilter dst(std::uint32_t ip, std::uint8_t len) { return {0, 0, ip, len}; }

  bool matches(const FiveTuple& ft) const noexcept;
  /// True when some packet could match both filters.
  bool intersects(const TaskFilter& other) const noexcept;
  bool is_wildcard() const noexcept { return src_len == 0 && dst_len == 0; }

  friend bool operator==(const TaskFilter&, const TaskFilter&) = default;
};

/// Source of an attribute parameter (p1/p2) in the initialization stage.
enum class ParamSource : std::uint8_t {
  kConst,          ///< immediate value
  kMeta,           ///< standard metadata (bytes, timestamp, queue, ...)
  kCompressedKey,  ///< a compressed key produced by the compression stage
};

/// Parameter specification at the *task* level; the compiler lowers it to a
/// concrete CMU parameter selection.
struct ParamSpec {
  ParamSource source = ParamSource::kConst;
  std::uint32_t const_value = 1;
  MetaField meta = MetaField::kOne;
  FlowKeySpec key_spec{};  ///< for kCompressedKey: which fields to compress

  static ParamSpec constant(std::uint32_t v) {
    ParamSpec p;
    p.source = ParamSource::kConst;
    p.const_value = v;
    return p;
  }
  static ParamSpec metadata(MetaField f) {
    ParamSpec p;
    p.source = ParamSource::kMeta;
    p.meta = f;
    return p;
  }
  static ParamSpec compressed(FlowKeySpec spec) {
    ParamSpec p;
    p.source = ParamSource::kCompressedKey;
    p.key_spec = spec;
    return p;
  }
};

/// A complete measurement-task definition as submitted by the operator.
struct TaskSpec {
  std::string name;
  TaskFilter filter{};
  FlowKeySpec key{};
  AttributeKind attribute = AttributeKind::kFrequency;
  ParamSpec param = ParamSpec::constant(1);
  Algorithm algorithm = Algorithm::kAuto;
  std::uint32_t memory_buckets = 16384;  ///< per-row bucket budget
  unsigned rows = 3;                     ///< d (independent CMU instances)
  std::uint64_t report_threshold = 0;    ///< for HH/DDoS style reporting
  double sample_probability = 1.0;       ///< probabilistic execution (§5.3)
  bool bloom_bit_packed = true;          ///< Existence: use all bucket bits (§4)

  // Optional accuracy targets for the static feasibility analyzer
  // (src/verify/dataflow_accuracy.cpp).  0 = unset: the deployment is not
  // checked against any bound.  `target_epsilon` is the CM error factor /
  // Bloom FPR / HLL relative stddev depending on the algorithm family;
  // `expected_items` bounds Bloom insertions for the FPR estimate.
  double target_epsilon = 0.0;
  double target_delta = 0.0;
  std::uint64_t expected_items = 0;
};

}  // namespace flymon
