# Empty compiler generated dependencies file for fig12a_forwarding_impact.
# This may be replaced when dependencies are built.
