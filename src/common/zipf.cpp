#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flymon {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (alpha < 0) throw std::invalid_argument("ZipfSampler: alpha must be >= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += std::pow(static_cast<double>(k + 1), -alpha);
    cdf_[k] = acc;
  }
  const double total = acc;
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range("ZipfSampler::probability");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace flymon
