// Stateful ALU + bound register array (a Tofino "register").
//
// An RMT register performs at most one memory access per packet, executing
// one of a small number of pre-loaded register actions (at most 4 on
// Tofino).  FlyMon's reduced operation set (paper Appendix A) consists of
// Cond-ADD, MAX and AND-OR; one slot stays reserved for future attributes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "dataplane/tofino_model.hpp"

namespace flymon::dataplane {

/// The reduced stateful operation set.  kXor occupies the reserved fourth
/// action slot when an Odd-Sketch style task is deployed (paper §6,
/// "Expressiveness of FlyMon").
enum class StatefulOp : std::uint8_t {
  kNop = 0,      ///< read-only access (returns the bucket)
  kCondAdd,      ///< if (reg < p2) reg += p1, return reg; else return 0
  kMax,          ///< if (reg < p1) reg  = p1, return reg; else return 0
  kAndOr,        ///< if (p2 == 0) reg &= p1 else reg |= p1; return reg
  kXor,          ///< reg ^= p1; return reg (Odd Sketch toggle)
};

const char* to_string(StatefulOp op) noexcept;

/// Fixed-size stateful memory with uniform bucket width.  Size and width
/// cannot change at runtime (the constraint that motivates FlyMon's address
/// translation); only the contents can be read/cleared by the control plane.
///
/// Cells are relaxed atomics: the hardware register keeps serving packets
/// while the control plane reads, clears and repartitions it, and the
/// software model mirrors that — a processing thread and a reconfiguring
/// control thread may touch the same cells without a data race.  Relaxed
/// ordering is sufficient because cross-thread visibility is sequenced by
/// the ExecPlan publish (release store / acquire load of the plan pointer).
class RegisterArray {
 public:
  explicit RegisterArray(std::uint32_t num_buckets,
                         unsigned bit_width = TofinoModel::kRegisterBitWidth);

  RegisterArray(RegisterArray&&) noexcept = default;
  RegisterArray& operator=(RegisterArray&&) noexcept = default;
  RegisterArray(const RegisterArray&) = delete;
  RegisterArray& operator=(const RegisterArray&) = delete;

  std::uint32_t size() const noexcept { return size_; }
  unsigned bit_width() const noexcept { return bit_width_; }
  std::uint32_t value_mask() const noexcept { return value_mask_; }

  std::uint32_t read(std::uint32_t addr) const {
    check(addr);
    return cells_[addr].load(std::memory_order_relaxed);
  }
  void write(std::uint32_t addr, std::uint32_t v) {
    check(addr);
    cells_[addr].store(v & value_mask_, std::memory_order_relaxed);
  }

  /// Unchecked hot-path accessors for the compiled ExecPlan: the compiler
  /// proves every translated address in bounds at publish time, and the
  /// store side masks values itself.
  std::uint32_t load_relaxed(std::uint32_t addr) const noexcept {
    return cells_[addr].load(std::memory_order_relaxed);
  }
  void store_relaxed(std::uint32_t addr, std::uint32_t v) noexcept {
    cells_[addr].store(v, std::memory_order_relaxed);
  }

  /// Control-plane bulk read of [begin, end).
  std::vector<std::uint32_t> read_range(std::uint32_t begin, std::uint32_t end) const;

  /// Control-plane reset of [begin, end) to zero.
  void clear_range(std::uint32_t begin, std::uint32_t end);
  void clear() { clear_range(0, size()); }

  /// SRAM blocks this register occupies in the resource model.
  unsigned sram_blocks() const noexcept {
    return TofinoModel::sram_blocks_for(size(), bit_width_);
  }

 private:
  void check(std::uint32_t addr) const {
    if (addr >= size_) throw std::out_of_range("RegisterArray: address out of range");
  }

  std::unique_ptr<std::atomic<std::uint32_t>[]> cells_;
  std::uint32_t size_ = 0;
  unsigned bit_width_;
  std::uint32_t value_mask_;
};

/// A stateful ALU bound to one register array.  Holds up to
/// TofinoModel::kMaxRegisterActions pre-loaded operations; the per-packet
/// "Select Operation" table picks which one runs.
class Salu {
 public:
  explicit Salu(RegisterArray& reg) noexcept : reg_(&reg) {}

  /// Pre-load an operation (compile-time configuration).  Throws if the
  /// action-slot budget is exhausted.
  void preload(StatefulOp op);

  bool has_op(StatefulOp op) const noexcept;
  unsigned loaded_ops() const noexcept { return static_cast<unsigned>(ops_.size()); }

  /// Execute one pre-loaded op at `addr` with params p1/p2.  Exactly one
  /// memory access.  Returns the op's result (Appendix A semantics);
  /// arithmetic saturates at the register's bit width.
  std::uint32_t execute(StatefulOp op, std::uint32_t addr, std::uint32_t p1,
                        std::uint32_t p2);

  /// Re-point at a relocated register (the owning CMU rebinding after a
  /// move); pre-loaded operations are preserved.
  void rebind(RegisterArray& reg) noexcept { reg_ = &reg; }

  RegisterArray& reg() noexcept { return *reg_; }
  const RegisterArray& reg() const noexcept { return *reg_; }

 private:
  RegisterArray* reg_;
  std::vector<StatefulOp> ops_;
};

}  // namespace flymon::dataplane
