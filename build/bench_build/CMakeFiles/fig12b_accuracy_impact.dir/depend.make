# Empty dependencies file for fig12b_accuracy_impact.
# This may be replaced when dependencies are built.
