file(REMOVE_RECURSE
  "../bench/table3_deployment_delay"
  "../bench/table3_deployment_delay.pdb"
  "CMakeFiles/table3_deployment_delay.dir/table3_deployment_delay.cpp.o"
  "CMakeFiles/table3_deployment_delay.dir/table3_deployment_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_deployment_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
