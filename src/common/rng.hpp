// Deterministic PRNG used throughout tests, benches and trace generation.
#pragma once

#include <cstdint>

#include "common/hash.hpp"

namespace flymon {

/// xoshiro256** — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDF00Dull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // Fill state via splitmix64 as recommended by the xoshiro authors.
    for (auto& word : s_) {
      seed = mix64(seed + 0x9E3779B97F4A7C15ull);
      word = seed;
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound must be non-zero.
  std::uint64_t next_below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  std::uint32_t next_u32() noexcept { return static_cast<std::uint32_t>(next() >> 32); }

  bool next_bool(double p_true) noexcept { return next_double() < p_true; }

  // UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }
  result_type operator()() noexcept { return next(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace flymon
