#include "verify/translate/symbits.hpp"

#include <algorithm>
#include <sstream>

namespace flymon::verify::translate {

namespace {

/// Symmetric difference of two sorted var sets: terms present in both
/// cancel (x ^ x = 0).
std::vector<std::uint32_t> xor_vars(const std::vector<std::uint32_t>& a,
                                    const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(a.size() + b.size());
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(out));
  return out;
}

}  // namespace

SymWord SymWord::constant(std::uint32_t v) {
  SymWord w;
  for (unsigned i = 0; i < 32; ++i) w.bits_[i].constant = ((v >> i) & 1u) != 0;
  return w;
}

SymWord SymWord::lane(std::uint32_t lane_id) {
  SymWord w;
  for (unsigned i = 0; i < 32; ++i) w.bits_[i].vars = {lane_id * 32u + i};
  return w;
}

SymWord SymWord::operator^(const SymWord& o) const {
  SymWord w;
  for (unsigned i = 0; i < 32; ++i) {
    w.bits_[i].constant = bits_[i].constant != o.bits_[i].constant;
    w.bits_[i].vars = xor_vars(bits_[i].vars, o.bits_[i].vars);
  }
  return w;
}

SymWord SymWord::operator&(std::uint32_t mask) const {
  SymWord w;
  for (unsigned i = 0; i < 32; ++i) {
    if (((mask >> i) & 1u) != 0) w.bits_[i] = bits_[i];
  }
  return w;
}

SymWord SymWord::operator>>(unsigned n) const {
  SymWord w;
  if (n >= 32) return w;  // all bits constant 0
  for (unsigned i = 0; i + n < 32; ++i) w.bits_[i] = bits_[i + n];
  return w;
}

int SymWord::first_divergent_bit(const SymWord& a, const SymWord& b) {
  for (unsigned i = 0; i < 32; ++i) {
    if (!(a.bits_[i] == b.bits_[i])) return static_cast<int>(i);
  }
  return -1;
}

std::string SymWord::to_string() const {
  std::uint32_t c = 0;
  for (unsigned i = 0; i < 32; ++i) {
    if (bits_[i].constant) c |= 1u << i;
  }
  std::ostringstream out;
  out << "0x" << std::hex << c;
  bool any = false;
  for (unsigned i = 0; i < 32; ++i) {
    for (const std::uint32_t v : bits_[i].vars) {
      out << (any ? "," : " ^ {");
      any = true;
      out << 'L' << (v / 32) << ".b" << (v % 32) << "->b" << i;
    }
  }
  if (any) out << '}';
  return out.str();
}

}  // namespace flymon::verify::translate
