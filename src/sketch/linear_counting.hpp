// Linear Counting (Whang et al., 1990): cardinality from the zero-bit
// fraction of a hashed bitmap.
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/sketch_common.hpp"

namespace flymon::sketch {

class LinearCounting {
 public:
  explicit LinearCounting(std::uint64_t m_bits);

  static LinearCounting with_memory(std::size_t bytes);

  void insert(KeyBytes key);
  /// n-hat = -m * ln(V), V = fraction of zero bits.
  double estimate() const;

  std::uint64_t bit_count() const noexcept { return m_; }
  std::size_t memory_bytes() const noexcept { return bits_.size() * 8; }
  void clear();

  /// Load a raw bit collected by a FlyMon CMU register.
  void load_bit(std::uint64_t idx);

 private:
  std::uint64_t m_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace flymon::sketch
